#include "ixp/ixp_generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "netbase/rng.hpp"

namespace sdx::ixp {

std::string_view category_name(AsCategory c) {
  switch (c) {
    case AsCategory::kEyeball: return "eyeball";
    case AsCategory::kTransit: return "transit";
    case AsCategory::kContent: return "content";
  }
  return "?";
}

IxpProfile IxpProfile::amsix() {
  return {"AMS-IX", 116, 639, 518082, 11161624, 0.0988};
}
IxpProfile IxpProfile::decix() {
  return {"DE-CIX", 92, 580, 518391, 30934525, 0.1364};
}
IxpProfile IxpProfile::linx() {
  return {"LINX", 71, 496, 503392, 16658819, 0.1267};
}

std::size_t GeneratedIxp::slot_of(ParticipantId id) const {
  for (std::size_t i = 0; i < participants.size(); ++i) {
    if (participants[i].id == id) return i;
  }
  throw std::out_of_range("unknown participant id");
}

GeneratedIxp generate_ixp(const GeneratorConfig& cfg) {
  net::SplitMix64 rng(cfg.seed);
  GeneratedIxp ixp;

  // Prefix universe: consecutive /24s inside 100.64.0.0/10 and onward —
  // plenty of room for 25k+ blocks, none colliding with router addressing.
  ixp.prefixes.reserve(cfg.prefixes);
  const std::uint32_t base = net::Ipv4Address::parse("100.64.0.0").value();
  for (std::size_t i = 0; i < cfg.prefixes; ++i) {
    ixp.prefixes.push_back(Ipv4Prefix(
        net::Ipv4Address(base + (static_cast<std::uint32_t>(i) << 8)), 24));
  }

  // Participants with ports; a fixed fraction have two ports (§6.1).
  net::PortId next_port = 1;
  std::uint32_t next_host = 1;
  for (std::size_t i = 0; i < cfg.participants; ++i) {
    core::Participant p;
    p.id = static_cast<ParticipantId>(i + 1);
    p.name = "AS" + std::to_string(64512 + i);
    p.asn = static_cast<net::Asn>(64512 + i);
    const std::size_t port_count = rng.chance(cfg.multi_port_fraction) ? 2 : 1;
    for (std::size_t k = 0; k < port_count; ++k) {
      core::PhysicalPort port;
      port.id = next_port++;
      port.router_mac = net::MacAddress(0x00'16'3E'00'00'00ull | port.id);
      port.router_ip = net::Ipv4Address(
          net::Ipv4Address::parse("10.0.0.0").value() + next_host++);
      p.ports.push_back(port);
    }
    ixp.participants.push_back(std::move(p));
  }
  for (const auto& p : ixp.participants) {
    ixp.ports.register_participant(p.id, p.port_ids());
    ixp.server.add_peer({p.id, p.asn, p.primary_port().router_ip});
  }

  // Categories.
  ixp.categories.resize(cfg.participants);
  const double mix_total =
      cfg.eyeball_fraction + cfg.transit_fraction + cfg.content_fraction;
  for (std::size_t i = 0; i < cfg.participants; ++i) {
    const double roll = rng.uniform() * mix_total;
    ixp.categories[i] = roll < cfg.eyeball_fraction
                            ? AsCategory::kEyeball
                            : (roll < cfg.eyeball_fraction +
                                          cfg.transit_fraction
                                   ? AsCategory::kTransit
                                   : AsCategory::kContent);
  }

  // Power-law origination counts: weight_i ∝ (i+1)^-alpha over a random
  // permutation of participants, scaled so every prefix has one origin.
  std::vector<std::size_t> order(cfg.participants);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = cfg.participants; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  std::vector<double> weights(cfg.participants);
  double weight_sum = 0;
  for (std::size_t rank = 0; rank < cfg.participants; ++rank) {
    weights[order[rank]] =
        std::pow(static_cast<double>(rank + 1), -cfg.skew_alpha);
    weight_sum += weights[order[rank]];
  }
  ixp.announced_counts.assign(cfg.participants, 0);
  {
    // Largest-remainder apportionment of the prefix universe.
    std::vector<double> exact(cfg.participants);
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < cfg.participants; ++i) {
      exact[i] = weights[i] / weight_sum * static_cast<double>(cfg.prefixes);
      ixp.announced_counts[i] = static_cast<std::size_t>(exact[i]);
      assigned += ixp.announced_counts[i];
    }
    std::vector<std::size_t> by_remainder(cfg.participants);
    std::iota(by_remainder.begin(), by_remainder.end(), 0);
    std::sort(by_remainder.begin(), by_remainder.end(),
              [&exact](std::size_t a, std::size_t b) {
                return exact[a] - std::floor(exact[a]) >
                       exact[b] - std::floor(exact[b]);
              });
    for (std::size_t k = 0; assigned < cfg.prefixes; ++k, ++assigned) {
      ++ixp.announced_counts[by_remainder[k % cfg.participants]];
    }
    // Every member originates at least two prefixes (IXP members are
    // networks, not single-LAN stubs); the excess comes off the largest.
    if (cfg.prefixes >= 3 * cfg.participants) {
      auto largest = static_cast<std::size_t>(
          std::max_element(ixp.announced_counts.begin(),
                           ixp.announced_counts.end()) -
          ixp.announced_counts.begin());
      for (std::size_t i = 0; i < cfg.participants; ++i) {
        while (ixp.announced_counts[i] < 2 &&
               ixp.announced_counts[largest] > 2) {
          ++ixp.announced_counts[i];
          --ixp.announced_counts[largest];
        }
      }
    }
  }

  // Originate: walk the universe once, handing each /24 to its origin.
  {
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < cfg.participants; ++i) {
      const auto& p = ixp.participants[i];
      for (std::size_t k = 0; k < ixp.announced_counts[i] &&
                              cursor < ixp.prefixes.size();
           ++k, ++cursor) {
        bgp::Route r;
        r.prefix = ixp.prefixes[cursor];
        r.attrs.as_path = net::AsPath{p.asn};
        r.attrs.next_hop = p.primary_port().router_ip;
        r.learned_from = p.id;
        r.peer_router_id = p.primary_port().router_ip;
        ixp.server.announce(std::move(r));
      }
    }
  }

  // Transit cones: each transit participant re-advertises the *entire
  // tables* of a few customer ASes with two-hop paths — the realistic
  // structure (a transit carries whole customer networks, not random
  // prefixes), and the one that gives prefixes alternative routes while
  // keeping forwarding equivalence classes block-shaped.
  for (std::size_t i = 0; i < cfg.participants; ++i) {
    if (ixp.categories[i] != AsCategory::kTransit) continue;
    const auto& p = ixp.participants[i];
    const std::size_t n_customers =
        8 + rng.below(std::max<std::size_t>(cfg.participants / 4, 2));
    std::size_t budget = std::max<std::size_t>(
        static_cast<std::size_t>(
            cfg.cone_factor *
            static_cast<double>(ixp.announced_counts[i] + 32)),
        cfg.prefixes / 8);
    for (std::size_t k = 0; k < n_customers && budget > 0; ++k) {
      const std::size_t customer = rng.below(cfg.participants);
      if (customer == i) continue;
      const auto& cp = ixp.participants[customer];
      // A transit often carries only part of a customer's table (regional
      // more-specifics, partial transit): take a bounded contiguous slice.
      auto table = ixp.server.advertised_by(cp.id);
      if (table.empty()) continue;
      const std::size_t max_len = std::min<std::size_t>(table.size(), 2048);
      const std::size_t len = 1 + rng.below(max_len);
      const std::size_t start = rng.below(table.size() - len + 1);
      table = std::vector<Ipv4Prefix>(
          table.begin() + static_cast<std::ptrdiff_t>(start),
          table.begin() + static_cast<std::ptrdiff_t>(start + len));
      for (auto prefix : table) {
        if (budget == 0) break;
        const auto* cands = ixp.server.candidates(prefix);
        if (cands == nullptr || cands->empty()) continue;
        bgp::Route r;
        r.prefix = prefix;
        r.attrs.as_path =
            net::AsPath{p.asn, cands->front().attrs.as_path.origin_as()};
        r.attrs.next_hop = p.primary_port().router_ip;
        r.learned_from = p.id;
        r.peer_router_id = p.primary_port().router_ip;
        ixp.server.announce(std::move(r));
        --budget;
      }
    }
  }
  // Ordinary members also re-advertise a little (multihomed customers,
  // sibling ASes): one small slice each with 50% probability. This is what
  // gives mid-ranked participants non-trivial announce sets.
  for (std::size_t i = 0; i < cfg.participants; ++i) {
    if (ixp.categories[i] == AsCategory::kTransit) continue;
    if (!rng.chance(0.5)) continue;
    const auto& p = ixp.participants[i];
    const std::size_t other = rng.below(cfg.participants);
    if (other == i) continue;
    auto table = ixp.server.advertised_by(ixp.participants[other].id);
    if (table.empty()) continue;
    const std::size_t len =
        1 + rng.below(std::min<std::size_t>(table.size(), 64));
    const std::size_t start = rng.below(table.size() - len + 1);
    for (std::size_t k = start; k < start + len; ++k) {
      const auto* cands = ixp.server.candidates(table[k]);
      if (cands == nullptr || cands->empty()) continue;
      bgp::Route r;
      r.prefix = table[k];
      r.attrs.as_path =
          net::AsPath{p.asn, cands->front().attrs.as_path.origin_as()};
      r.attrs.next_hop = p.primary_port().router_ip;
      r.learned_from = p.id;
      r.peer_router_id = p.primary_port().router_ip;
      ixp.server.announce(std::move(r));
    }
  }
  return ixp;
}

namespace {

/// Participant slots of one category, ranked by originated prefix count
/// (descending) — "we sort the ASes in each category by the number of
/// prefixes that they advertise" (§6.1).
std::vector<std::size_t> ranked_category(const GeneratedIxp& ixp,
                                         AsCategory cat) {
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < ixp.participants.size(); ++i) {
    if (ixp.categories[i] == cat) slots.push_back(i);
  }
  std::sort(slots.begin(), slots.end(), [&ixp](std::size_t a, std::size_t b) {
    return ixp.announced_counts[a] > ixp.announced_counts[b];
  });
  return slots;
}

net::Field random_match_field(net::SplitMix64& rng) {
  switch (rng.below(3)) {
    case 0: return net::Field::kDstPort;
    case 1: return net::Field::kSrcPort;
    default: return net::Field::kIpProto;
  }
}

core::ClauseMatch one_field_match(net::SplitMix64& rng) {
  core::ClauseMatch m;
  const net::Field f = random_match_field(rng);
  const std::uint64_t v = f == net::Field::kIpProto
                              ? (rng.chance(0.5) ? 6 : 17)
                              : (rng.chance(0.5) ? 80 : 443);
  m.field(f, v);
  return m;
}

}  // namespace

std::vector<Ipv4Prefix> sample_policy_prefixes(const GeneratedIxp& ixp,
                                               std::size_t count,
                                               std::uint64_t seed) {
  net::SplitMix64 rng(seed);
  std::vector<Ipv4Prefix> pool = ixp.prefixes;
  count = std::min(count, pool.size());
  for (std::size_t i = 0; i < count; ++i) {
    std::swap(pool[i], pool[i + rng.below(pool.size() - i)]);
  }
  pool.resize(count);
  std::sort(pool.begin(), pool.end());
  return pool;
}

std::size_t synthesize_policies(GeneratedIxp& ixp,
                                const PolicySynthConfig& cfg) {
  net::SplitMix64 rng(cfg.seed);
  auto eyeballs = ranked_category(ixp, AsCategory::kEyeball);
  auto transits = ranked_category(ixp, AsCategory::kTransit);
  auto contents = ranked_category(ixp, AsCategory::kContent);

  // When a global policy-prefix set is configured, restrict every outbound
  // clause to it (§6.2 methodology).
  auto restrict_to_px = [&cfg](core::OutboundClause& c) {
    if (!cfg.policy_prefixes.empty()) {
      c.match.dst_prefixes = cfg.policy_prefixes;
    }
  };

  // Participants ranked by total exported table size — the big transit
  // carriers most policies forward into ("about 95% of all IXP traffic is
  // exchanged between about 5% of the participants", §4.3.1).
  std::vector<std::size_t> top_exporters(ixp.participants.size());
  {
    std::iota(top_exporters.begin(), top_exporters.end(), std::size_t{0});
    std::vector<std::size_t> export_size(ixp.participants.size());
    for (std::size_t i = 0; i < ixp.participants.size(); ++i) {
      export_size[i] =
          ixp.server.advertised_by(ixp.participants[i].id).size();
    }
    std::sort(top_exporters.begin(), top_exporters.end(),
              [&export_size](std::size_t a, std::size_t b) {
                return export_size[a] > export_size[b];
              });
    top_exporters.resize(
        std::max<std::size_t>(4, ixp.participants.size() / 20));
  }

  const std::size_t top_eyeballs = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.top_eyeball_fraction *
                                  static_cast<double>(eyeballs.size())));
  const std::size_t top_transits = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.top_transit_fraction *
                                  static_cast<double>(transits.size())));
  const std::size_t policy_contents = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.content_fraction *
                                  static_cast<double>(contents.size())));

  std::size_t clauses = 0;

  // Content providers: outbound application-specific peering toward three
  // random top eyeballs, plus one inbound redirection policy.
  for (std::size_t k = 0; k < policy_contents && k < contents.size(); ++k) {
    const std::size_t slot = contents[rng.below(contents.size())];
    auto& p = ixp.participants[slot];
    for (std::size_t t = 0; t < cfg.content_outbound_targets; ++t) {
      const std::size_t eb = eyeballs[rng.below(std::max<std::size_t>(
          top_eyeballs, 1))];
      if (ixp.participants[eb].id == p.id) continue;
      core::OutboundClause c;
      c.match.dst_port(t == 0 ? 80 : (t == 1 ? 443 : 8080));
      c.to = ixp.participants[eb].id;
      restrict_to_px(c);
      p.outbound.push_back(std::move(c));
      ++clauses;
    }
    // One clause toward a big carrier (transit-cost balancing is not a
    // transit-only concern for large content networks).
    if (!top_exporters.empty()) {
      const std::size_t carrier =
          top_exporters[rng.below(top_exporters.size())];
      if (ixp.participants[carrier].id != p.id) {
        core::OutboundClause c;
        c.match.dst_port(443);
        c.to = ixp.participants[carrier].id;
        restrict_to_px(c);
        p.outbound.push_back(std::move(c));
        ++clauses;
      }
    }
    core::InboundClause in;
    in.match = one_field_match(rng);
    in.to_port = rng.below(p.ports.size());
    p.inbound.push_back(std::move(in));
    ++clauses;
  }

  // Eyeballs: inbound policies for half of the content providers.
  for (std::size_t k = 0; k < top_eyeballs && k < eyeballs.size(); ++k) {
    auto& p = ixp.participants[eyeballs[k]];
    const std::size_t n_in = std::max<std::size_t>(1, contents.size() / 2);
    for (std::size_t t = 0; t < n_in; ++t) {
      core::InboundClause in;
      in.match = one_field_match(rng);
      // Distinguish the content provider by source port band to keep the
      // clause set non-degenerate.
      in.match.field(net::Field::kSrcPort, 1024 + (t % 32));
      in.to_port = rng.below(p.ports.size());
      p.inbound.push_back(std::move(in));
      ++clauses;
    }
  }

  // Transit providers: outbound TE for one prefix group of half the top
  // eyeballs (dst prefix + one extra field), inbound proportional to the
  // top content providers.
  for (std::size_t k = 0; k < top_transits && k < transits.size(); ++k) {
    auto& p = ixp.participants[transits[k]];
    for (std::size_t e = 0; e < top_eyeballs; e += 2) {
      const std::size_t eb = eyeballs[e];
      if (ixp.participants[eb].id == p.id) continue;
      core::OutboundClause c;
      if (cfg.policy_prefixes.empty()) {
        // One announced prefix of the eyeball, widened to its /16 block.
        const auto adv = ixp.server.advertised_by(ixp.participants[eb].id);
        if (adv.empty()) continue;
        c.match.dst(Ipv4Prefix(adv[rng.below(adv.size())].network(), 16));
      } else {
        c.match.dst_prefixes = cfg.policy_prefixes;
      }
      c.match.dst_port(rng.chance(0.5) ? 80 : 443);
      c.to = ixp.participants[eb].id;
      p.outbound.push_back(std::move(c));
      ++clauses;
    }
    // "Policies that are intended to balance transit costs" (§6.1):
    // outbound TE toward the big carriers, whose large (cone) export sets
    // make these the group-shaping clauses.
    for (std::size_t e = 0; e < 4 && !top_exporters.empty(); ++e) {
      const std::size_t other = top_exporters[rng.below(top_exporters.size())];
      if (ixp.participants[other].id == p.id) continue;
      core::OutboundClause c;
      c.match.dst_port(rng.chance(0.5) ? 80 : 443);
      c.match.field(net::Field::kIpProto, rng.chance(0.5) ? 6 : 17);
      c.to = ixp.participants[other].id;
      restrict_to_px(c);
      p.outbound.push_back(std::move(c));
      ++clauses;
    }
    const std::size_t n_in = std::max<std::size_t>(1, policy_contents / 2);
    for (std::size_t t = 0; t < n_in; ++t) {
      core::InboundClause in;
      in.match = one_field_match(rng);
      in.to_port = rng.below(p.ports.size());
      p.inbound.push_back(std::move(in));
      ++clauses;
    }
  }
  return clauses;
}

}  // namespace sdx::ixp
