/// Policy safety verification (verify/): the inter-participant forwarding
/// graph checker. Clean deployments prove loop-free/isolated/delivered at
/// every compile width; the three planted stale-state scenarios (a
/// two-participant forwarding loop, a prefix steered to a non-exporting
/// participant, a next-hop withdrawal blackhole) are each detected with a
/// counterexample packet that reproduces through FlowTable::process; the
/// incremental re-check covers exactly the dirty prefixes.

#include <gtest/gtest.h>

#include "sdx/runtime.hpp"
#include "verify/safety.hpp"

namespace sdx::core {
namespace {

using net::Ipv4Prefix;
using net::PacketBuilder;
using verify::ViolationKind;

std::uint64_t counter(SdxRuntime& r, const char* name,
                      telemetry::Labels labels = {}) {
  return r.telemetry().metrics.counter(name, "", std::move(labels)).value();
}

/// The reproducible clean exchange: A steers port-80 traffic to B and
/// port-443 traffic to C; B and C announce.
void build_clean(SdxRuntime& r) {
  auto pa = r.add_participant("A", 65001);
  auto pb = r.add_participant("B", 65002);
  auto pc = r.add_participant("C", 65003);
  r.set_outbound(pa, {OutboundClause{ClauseMatch{}.dst_port(80), pb},
                      OutboundClause{ClauseMatch{}.dst_port(443), pc}});
  r.announce(pb, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65002, 7});
  r.announce(pb, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65002, 7});
  r.announce(pc, Ipv4Prefix::parse("100.9.0.0/16"), net::AsPath{65003});
  r.install();
}

/// Every reported graph violation must carry a counterexample that (a) is a
/// live packet — the deployed flow table forwards it somewhere — and (b)
/// re-exhibits its violation kind when walked from its recorded framing.
void assert_replayable(SdxRuntime& rt, const verify::SafetyReport& report,
                       ViolationKind kind) {
  const auto view = rt.deployment_view();
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.kind != kind) continue;
    ASSERT_TRUE(v.counterexample.has_value()) << v.what;
    const auto& cx = *v.counterexample;
    EXPECT_EQ(cx.packet.port(), cx.ingress_port);
    auto copies = rt.fabric().sdx_switch().table().process(cx.packet);
    EXPECT_FALSE(copies.empty())
        << "counterexample packet dies immediately: " << cx.to_string();
    const auto replayed = verify::replay(view, cx);
    EXPECT_TRUE(replayed.reproduces(kind))
        << "counterexample does not reproduce " << verify::kind_name(kind)
        << ": " << cx.to_string() << " — " << replayed.detail;
    found = true;
  }
  EXPECT_TRUE(found) << "no violation of kind " << verify::kind_name(kind);
}

// --- clean deployments ------------------------------------------------------

TEST(SafetyVerify, CleanScenarioPassesAtThreads1And8) {
  for (unsigned threads : {1u, 8u}) {
    SdxRuntime rt;
    rt.set_compile_threads(threads);
    rt.enable_verification();
    build_clean(rt);
    const auto& report = rt.last_safety_report();
    EXPECT_TRUE(report.ok()) << "threads=" << threads << "\n"
                             << report.to_string();
    EXPECT_FALSE(report.incremental);
    EXPECT_GT(report.classes_checked, 0u);
    EXPECT_EQ(report.prefixes_checked, 3u);
    EXPECT_GT(report.local_rules_checked, 0u);
  }
}

TEST(SafetyVerify, VerifyNowRunsWithoutEnabling) {
  SdxRuntime rt;
  build_clean(rt);
  EXPECT_FALSE(rt.verification_enabled());
  const auto report = rt.verify_now();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.classes_checked, 0u);
  EXPECT_GT(report.local_rules_checked, 0u);
  EXPECT_EQ(counter(rt, "sdx_verify_runs_total", {{"mode", "full"}}), 0u)
      << "verify_now must not touch the stage telemetry";
}

TEST(SafetyVerify, VerifyNowThrowsBeforeInstall) {
  SdxRuntime rt;
  rt.add_participant("A", 65001);
  EXPECT_THROW(rt.verify_now(), std::logic_error);
  EXPECT_THROW(rt.deployment_view(), std::logic_error);
}

TEST(SafetyVerify, CleanFastPathUpdatesStayClean) {
  SdxRuntime rt;
  rt.enable_verification();
  build_clean(rt);
  // Inline fast-path update: C takes over one of B's prefixes.
  rt.announce(3, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
  EXPECT_TRUE(rt.last_safety_report().ok())
      << rt.last_safety_report().to_string();
  EXPECT_TRUE(rt.last_safety_report().incremental);
  // A legitimate withdrawal through the runtime (re-advertised everywhere)
  // is not a violation.
  rt.withdraw(3, Ipv4Prefix::parse("100.1.0.0/16"));
  EXPECT_TRUE(rt.last_safety_report().ok())
      << rt.last_safety_report().to_string();
  // Batched burst.
  rt.enable_batching({0, 0});
  rt.announce(3, Ipv4Prefix::parse("100.7.0.0/16"), net::AsPath{65003});
  rt.announce(2, Ipv4Prefix::parse("100.8.0.0/16"), net::AsPath{65002, 7});
  rt.flush();
  EXPECT_TRUE(rt.last_safety_report().ok())
      << rt.last_safety_report().to_string();
  // Full recompile supersedes everything.
  rt.background_recompile();
  EXPECT_TRUE(rt.last_safety_report().ok())
      << rt.last_safety_report().to_string();
  EXPECT_FALSE(rt.last_safety_report().incremental);
}

TEST(SafetyVerify, CleanRemoteParticipantRewriteStaysClean) {
  // Wide-area anycast (Figure 4b): a remote tenant's inbound rewrites must
  // not read as blackholes — traffic toward a remote-only advertiser leaves
  // the model.
  SdxRuntime rt;
  rt.enable_verification();
  auto pa = rt.add_participant("A", 65001);
  auto pb = rt.add_participant("B", 65002);
  auto pd = rt.add_remote_participant("T", 65010);
  rt.announce(pb, Ipv4Prefix::parse("74.125.0.0/16"),
              net::AsPath{65002, 16509});
  rt.announce(pa, Ipv4Prefix::parse("204.57.0.0/16"), net::AsPath{65001});
  rt.announce(pd, Ipv4Prefix::parse("74.126.0.0/16"));
  rt.set_inbound(
      pd, {InboundClause{
              ClauseMatch{}.dst(Ipv4Prefix::parse("74.126.1.1/32")),
              {{Field::kDstIp, net::Ipv4Address::parse("74.125.3.9").value()}},
              std::nullopt}});
  rt.install();
  EXPECT_TRUE(rt.last_safety_report().ok())
      << rt.last_safety_report().to_string();
}

TEST(SafetyVerify, PartitionedModeIncrementallyRechecksPolicyChanges) {
  CompileOptions options;
  options.partitioned = true;
  SdxRuntime rt(bgp::DecisionConfig{}, options);
  rt.enable_verification();
  build_clean(rt);
  const auto full_runs =
      counter(rt, "sdx_verify_runs_total", {{"mode", "full"}});
  EXPECT_GE(full_runs, 1u);
  // A post-install outbound change recompiles one partition and re-checks
  // only its affected prefixes.
  rt.set_outbound(1, {OutboundClause{ClauseMatch{}.dst_port(53), 3}});
  EXPECT_TRUE(rt.last_safety_report().ok())
      << rt.last_safety_report().to_string();
  EXPECT_TRUE(rt.last_safety_report().incremental);
  EXPECT_GE(counter(rt, "sdx_verify_runs_total", {{"mode", "incremental"}}),
            1u);
  EXPECT_EQ(counter(rt, "sdx_verify_runs_total", {{"mode", "full"}}),
            full_runs);
}

// --- planted stale-state scenarios ------------------------------------------
//
// Violations require *stale* data-plane state: flow rules and router FIBs
// compiled against a RIB that changed afterwards. The plants below mutate
// the route server directly (rt.route_server().withdraw bypasses every
// runtime hook), which leaves the deployed tables exactly as a crashed or
// delayed control loop would.

TEST(SafetyVerify, PlantedTwoParticipantLoopIsDetected) {
  SdxRuntime rt;
  auto p1 = rt.add_participant("P1", 65001);
  auto p2 = rt.add_participant("P2", 65002);
  const auto q = Ipv4Prefix::parse("203.0.113.0/24");
  // Both transit-announce q, and each steers DNS traffic for it at the
  // other — legal while both advertise (steering at an advertiser), a cycle
  // the moment neither does.
  rt.announce(p1, q, net::AsPath{65001, 900});
  rt.announce(p2, q, net::AsPath{65002, 901});
  rt.set_outbound(p1, {OutboundClause{ClauseMatch{}.dst_port(53), p2}});
  rt.set_outbound(p2, {OutboundClause{ClauseMatch{}.dst_port(53), p1}});
  rt.install();
  EXPECT_TRUE(rt.verify_now().ok());

  rt.route_server().withdraw(p1, q);
  rt.route_server().withdraw(p2, q);

  const auto report = rt.verify_now();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.count(ViolationKind::kLoop), 1u) << report.to_string();
  assert_replayable(rt, report, ViolationKind::kLoop);
}

TEST(SafetyVerify, PlantedNonExportingSteeringIsAnIsolationBreach) {
  SdxRuntime rt;
  auto pa = rt.add_participant("A", 65001);
  auto pb = rt.add_participant("B", 65002);
  auto pc = rt.add_participant("C", 65003);
  const auto p = Ipv4Prefix::parse("100.1.0.0/16");
  rt.announce(pb, p);                           // origin
  rt.announce(pc, p, net::AsPath{65003, 65002});  // transit
  rt.set_outbound(pa, {OutboundClause{ClauseMatch{}.dst_port(80), pc}});
  rt.install();
  EXPECT_TRUE(rt.verify_now().ok());

  // C's advertisement disappears behind the control loop's back: A's
  // steering rule now hands C traffic for a prefix C never exported to A.
  rt.route_server().withdraw(pc, p);

  const auto report = rt.verify_now();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.count(ViolationKind::kIsolation), 1u)
      << report.to_string();
  assert_replayable(rt, report, ViolationKind::kIsolation);
  (void)pa;
}

TEST(SafetyVerify, PlantedNextHopWithdrawalIsABlackhole) {
  SdxRuntime rt;
  auto pa = rt.add_participant("A", 65001);
  auto px = rt.add_participant("X", 65002);
  const auto p = Ipv4Prefix::parse("100.5.0.0/16");
  rt.announce(px, p);  // sole advertiser
  rt.set_outbound(pa, {OutboundClause{ClauseMatch{}.dst_port(8080), px}});
  rt.install();
  EXPECT_TRUE(rt.verify_now().ok());

  // The only route for p vanishes behind the back: A's router FIB and the
  // steering rules keep sending, X has nowhere to forward.
  rt.route_server().withdraw(px, p);

  const auto report = rt.verify_now();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.count(ViolationKind::kBlackhole), 1u)
      << report.to_string();
  assert_replayable(rt, report, ViolationKind::kBlackhole);
  (void)pa;
}

// --- incremental re-check ---------------------------------------------------

TEST(SafetyVerify, IncrementalRecheckCoversExactlyDirtyPrefixes) {
  SdxRuntime rt;
  rt.enable_verification();
  build_clean(rt);
  const auto full = rt.last_safety_report();
  EXPECT_FALSE(full.incremental);
  const auto full_classes = full.classes_checked;

  // One dirty prefix: the stage re-walks it and reassembles the rest from
  // cache — total coverage unchanged, work bounded by one prefix.
  rt.announce(3, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65003});
  const auto incr = rt.last_safety_report();
  EXPECT_TRUE(incr.incremental);
  EXPECT_TRUE(incr.ok()) << incr.to_string();
  EXPECT_GE(incr.classes_checked, full_classes);
  EXPECT_EQ(counter(rt, "sdx_verify_runs_total", {{"mode", "incremental"}}),
            1u);
  // The incremental reassembly covers exactly what a fresh full pass sees.
  const auto fresh = rt.verify_now();
  EXPECT_EQ(incr.prefixes_checked, fresh.prefixes_checked);
  EXPECT_EQ(incr.classes_checked, fresh.classes_checked);
  EXPECT_EQ(incr.edges_walked, fresh.edges_walked);
}

TEST(SafetyVerify, StandaloneCheckerIncrementalDropsDepartedPrefixes) {
  SdxRuntime rt;
  build_clean(rt);
  verify::SafetyChecker checker;
  const auto view = rt.deployment_view();
  auto report = checker.full(view);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.prefixes_checked, 3u);

  // A prefix that leaves every RIB and FIB drops out of the cached report.
  const auto gone = Ipv4Prefix::parse("100.9.0.0/16");
  rt.withdraw(3, gone);
  report = checker.incremental(rt.deployment_view(), {gone});
  EXPECT_TRUE(report.incremental);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.prefixes_checked, 2u);
}

// --- report plumbing --------------------------------------------------------

TEST(SafetyVerify, ReportFoldsLocalAuditAndRendersCounterexamples) {
  SdxRuntime rt;
  auto p1 = rt.add_participant("P1", 65001);
  auto p2 = rt.add_participant("P2", 65002);
  const auto q = Ipv4Prefix::parse("203.0.113.0/24");
  rt.announce(p1, q, net::AsPath{65001, 900});
  rt.announce(p2, q, net::AsPath{65002, 901});
  rt.set_outbound(p1, {OutboundClause{ClauseMatch{}.dst_port(53), p2}});
  rt.set_outbound(p2, {OutboundClause{ClauseMatch{}.dst_port(53), p1}});
  rt.install();
  rt.route_server().withdraw(p1, q);
  rt.route_server().withdraw(p2, q);

  const auto report = rt.verify_now();
  EXPECT_GT(report.local_rules_checked, 0u)
      << "local audit must run through the same entry point";
  const auto text = report.to_string();
  EXPECT_NE(text.find("loop"), std::string::npos) << text;
  EXPECT_NE(text.find("counterexample"), std::string::npos) << text;
  EXPECT_NE(text.find("203.0.113"), std::string::npos) << text;
}

TEST(SafetyVerify, ViolationTelemetryCountsByKind) {
  SdxRuntime rt;
  auto pa = rt.add_participant("A", 65001);
  auto px = rt.add_participant("X", 65002);
  const auto p = Ipv4Prefix::parse("100.5.0.0/16");
  rt.announce(px, p);
  rt.set_outbound(pa, {OutboundClause{ClauseMatch{}.dst_port(8080), px}});
  rt.install();
  rt.enable_verification();
  EXPECT_TRUE(rt.last_safety_report().ok());
  EXPECT_EQ(
      counter(rt, "sdx_verify_violations_total", {{"kind", "blackhole"}}),
      0u);
  // The behind-the-back withdrawal survives even a full recompile: deploy()
  // re-advertises only prefixes the server still knows, so A's router keeps
  // its stale route and the new table has no rules for the vanished group.
  rt.route_server().withdraw(px, p);
  rt.background_recompile();
  const auto& report = rt.last_safety_report();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.count(ViolationKind::kBlackhole), 1u)
      << report.to_string();
  EXPECT_GE(
      counter(rt, "sdx_verify_violations_total", {{"kind", "blackhole"}}),
      1u);
  EXPECT_GE(counter(rt, "sdx_verify_runs_total", {{"mode", "full"}}), 2u);
}

}  // namespace
}  // namespace sdx::core
