/// Tests for the forwarding explainer: each verdict kind is produced by
/// the scenario that causes it, the reported outcome matches the real
/// data plane, and the pure lookup leaves counters untouched.

#include <gtest/gtest.h>

#include "sdx/explain.hpp"
#include "sdx/runtime.hpp"

namespace sdx::core {
namespace {

using net::Ipv4Prefix;
using net::PacketBuilder;

class ExplainFixture : public ::testing::Test {
 protected:
  ExplainFixture() {
    a = rt.add_participant("A", 65001);
    b = rt.add_participant("B", 65002);
    c = rt.add_participant("C", 65003);
    tenant = rt.add_remote_participant("tenant", 65010);
    rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
    rt.set_inbound(
        tenant,
        {InboundClause{ClauseMatch{}.dst(Ipv4Prefix::host(
                           net::Ipv4Address::parse("100.1.9.9"))),
                       {{net::Field::kDstIp,
                         net::Ipv4Address::parse("100.2.0.5").value()}},
                       std::nullopt}});
    rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"),
                net::AsPath{65002, 9});
    rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
    rt.announce(c, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65003});
    // An untouched prefix (no policy covers it).
    rt.announce(c, Ipv4Prefix::parse("100.3.0.0/16"), net::AsPath{65003});
    rt.install();
  }

  Explanation run(const char* dst, std::uint64_t port) {
    auto payload = PacketBuilder()
                       .src_ip("96.25.160.5")
                       .dst_ip(dst)
                       .proto(net::kProtoTcp)
                       .dst_port(port)
                       .build();
    return explain(rt, a, payload, 0);
  }

  SdxRuntime rt;
  bgp::ParticipantId a = 0, b = 0, c = 0, tenant = 0;
};

TEST_F(ExplainFixture, PolicyClauseAttribution) {
  auto e = run("100.1.1.1", 80);
  EXPECT_EQ(e.kind, RuleKind::kPolicyClause);
  ASSERT_TRUE(e.route_prefix.has_value());
  EXPECT_EQ(*e.route_prefix, Ipv4Prefix::parse("100.1.0.0/16"));
  EXPECT_EQ(e.route_via, c);  // BGP best is C, policy diverts to B
  ASSERT_TRUE(e.group.has_value());
  ASSERT_TRUE(e.egress.has_value());
  EXPECT_EQ(e.receiver, b);
  // Human rendering mentions the verdict and the rule.
  EXPECT_NE(e.to_string().find("policy-clause"), std::string::npos);
  EXPECT_NE(e.to_string().find("rule:"), std::string::npos);
}

TEST_F(ExplainFixture, GroupDefaultAttribution) {
  auto e = run("100.1.1.1", 53);
  EXPECT_EQ(e.kind, RuleKind::kGroupDefault);
  EXPECT_EQ(e.receiver, c);
}

TEST_F(ExplainFixture, MacLearningAttribution) {
  auto e = run("100.3.1.1", 80);
  EXPECT_EQ(e.kind, RuleKind::kMacLearning);
  EXPECT_FALSE(e.group.has_value());
  EXPECT_EQ(e.receiver, c);
}

TEST_F(ExplainFixture, RemoteRewriteAttribution) {
  auto e = run("100.1.9.9", 53);
  EXPECT_EQ(e.kind, RuleKind::kRemoteRewrite);
  EXPECT_EQ(e.delivered.dst_ip(), net::Ipv4Address::parse("100.2.0.5"));
  EXPECT_EQ(e.receiver, c);
}

TEST_F(ExplainFixture, NoRouteVerdict) {
  auto e = run("9.9.9.9", 80);
  EXPECT_EQ(e.kind, RuleKind::kNoRoute);
  EXPECT_FALSE(e.rule_index.has_value());
  EXPECT_FALSE(e.egress.has_value());
}

TEST_F(ExplainFixture, ExplanationMatchesLiveDataPlane) {
  for (const char* dst : {"100.1.1.1", "100.2.0.7", "100.3.4.5"}) {
    for (std::uint64_t port : {80u, 53u}) {
      auto payload = PacketBuilder()
                         .src_ip("96.25.160.5")
                         .dst_ip(dst)
                         .proto(net::kProtoTcp)
                         .dst_port(port)
                         .build();
      auto e = explain(rt, a, payload, 0);
      auto live = rt.send(a, payload);
      ASSERT_EQ(e.egress.has_value(), !live.empty()) << dst << ":" << port;
      if (!live.empty()) {
        EXPECT_EQ(*e.egress, live[0].port);
        EXPECT_EQ(e.delivered, live[0].frame);
      }
    }
  }
}

TEST_F(ExplainFixture, ExplainIsPure) {
  const auto before = rt.fabric().sdx_switch().table().total_matched();
  run("100.1.1.1", 80);
  EXPECT_EQ(rt.fabric().sdx_switch().table().total_matched(), before);
}

TEST_F(ExplainFixture, RemoteSenderYieldsNoRoute) {
  auto e = explain(rt, tenant, PacketBuilder().dst_ip("100.1.1.1").build());
  EXPECT_EQ(e.kind, RuleKind::kNoRoute);
}

}  // namespace
}  // namespace sdx::core
