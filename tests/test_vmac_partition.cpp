/// Tests for partitioned per-participant compilation and attribute-encoded
/// VMACs: layout encode/decode round trips at many field widths, allocator
/// group-budget enforcement, masked dst-MAC matching through FieldMatch /
/// Classifier / FlowTable, pairwise ≡ partitioned forwarding on a small
/// exchange, single-partition recompilation on a policy change (telemetry
/// counted), fingerprint determinism across thread counts, and the warm
/// restart gates (partitioned artifacts round trip; a layout change forces
/// a cold install).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "dataplane/fabric.hpp"
#include "sdx/runtime.hpp"
#include "sdx/vmac_layout.hpp"
#include "sdx/vnh_allocator.hpp"

namespace sdx::core {
namespace {

namespace fs = std::filesystem;

using net::Field;
using net::FieldMatch;
using net::FlowMatch;
using net::Ipv4Prefix;
using net::MacAddress;
using net::PacketBuilder;
using policy::ActionSeq;
using policy::Classifier;
using policy::Rule;

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/sdx_vmac_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// --- VMAC layout -------------------------------------------------------------

TEST(VmacLayoutTest, DefaultLayoutKeepsLegacyEncoding) {
  VmacLayout l;
  // With zero attributes the default layout is the pre-layout encoding,
  // bit for bit: 0x02 top octet, counter in the low bits.
  EXPECT_EQ(l.encode(7, 0, 0).bits(), (0x02ull << 40) | 7);
  EXPECT_EQ(l.encode(0, 0, 0).bits(), 0x02ull << 40);
  EXPECT_EQ(l.descriptor(), "vmac-layout/v1 group=20 nexthop=12 attr=8");
}

TEST(VmacLayoutTest, EncodeDecodeRoundTripsAtManyWidths) {
  const VmacLayout layouts[] = {
      {},                                                    // default 20/12/8
      {.group_bits = 10, .nexthop_bits = 6, .attr_bits = 24},
      {.group_bits = 30, .nexthop_bits = 10, .attr_bits = 0},
      {.group_bits = 40, .nexthop_bits = 0, .attr_bits = 0},
      {.group_bits = 1, .nexthop_bits = 20, .attr_bits = 19},
      {.group_bits = 16, .nexthop_bits = 16, .attr_bits = 8},
  };
  for (const auto& l : layouts) {
    ASSERT_NO_THROW(l.validate()) << l.descriptor();
    // Deterministic samples across each field's range, including the
    // boundaries.
    const std::uint64_t groups[] = {0, 1, l.group_mask() / 3, l.group_mask()};
    const std::uint64_t nexthops[] = {0, l.nexthop_capacity() / 2,
                                      l.nexthop_capacity()};
    const std::uint64_t attr_cap =
        l.attr_bits == 0 ? 0 : (1ull << l.attr_bits) - 1;
    const std::uint64_t attrs[] = {0, attr_cap / 5, attr_cap};
    for (std::uint64_t g : groups) {
      for (std::uint64_t nh : nexthops) {
        for (std::uint64_t at : attrs) {
          const MacAddress mac = l.encode(g, nh, at);
          EXPECT_EQ(mac.bits() & VmacLayout::kTopOctetMask,
                    VmacLayout::kTopOctetValue)
              << l.descriptor();
          EXPECT_EQ(l.group_of(mac), g) << l.descriptor();
          EXPECT_EQ(l.nexthop_of(mac), nh) << l.descriptor();
          EXPECT_EQ(l.attrs_of(mac), at) << l.descriptor();
        }
      }
    }
  }
}

TEST(VmacLayoutTest, ValidateRejectsDegenerateAndOversizedWidths) {
  EXPECT_THROW(
      (VmacLayout{.group_bits = 0, .nexthop_bits = 12, .attr_bits = 8})
          .validate(),
      std::invalid_argument);
  // 24 + 12 + 8 = 44 > 40 usable bits.
  EXPECT_THROW(
      (VmacLayout{.group_bits = 24, .nexthop_bits = 12, .attr_bits = 8})
          .validate(),
      std::invalid_argument);
  try {
    VmacLayout{.group_bits = 24, .nexthop_bits = 12, .attr_bits = 8}
        .validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("44"), std::string::npos) << e.what();
  }
}

TEST(VmacLayoutTest, MaskedHelpersGuardAgainstRouterMacs) {
  VmacLayout l;
  // Router MACs carry the 00:16:3e OUI — bits set in the attribute and
  // next-hop positions — so every masked helper must pin the top octet.
  const std::uint64_t router = 0x00'16'3E'00'00'05ull;

  const FieldMatch attr3 = l.attr_bit_match(3);
  EXPECT_TRUE(attr3.matches(l.encode(5, 2, 1u << 3).bits()));
  EXPECT_TRUE(attr3.matches(l.encode(9, 0, (1u << 3) | (1u << 1)).bits()));
  EXPECT_FALSE(attr3.matches(l.encode(5, 2, 1u << 2).bits()));
  EXPECT_FALSE(attr3.matches(router));

  const FieldMatch nh2 = l.nexthop_match(2);
  EXPECT_TRUE(nh2.matches(l.encode(0, 2, 0).bits()));
  EXPECT_TRUE(nh2.matches(l.encode(77, 2, 0xFF).bits()));
  EXPECT_FALSE(nh2.matches(l.encode(77, 3, 0xFF).bits()));
  EXPECT_FALSE(nh2.matches(router));
  // Slot 0 ("no default") matches only tags with a zero next-hop field.
  const FieldMatch nh0 = l.nexthop_match(0);
  EXPECT_TRUE(nh0.matches(l.encode(4, 0, 1).bits()));
  EXPECT_FALSE(nh0.matches(l.encode(4, 1, 1).bits()));
}

// --- VNH allocator (satellite: group-budget boundary) ------------------------

TEST(VnhAllocatorTest, GroupBudgetBoundaryIsEnforced) {
  const VmacLayout small{.group_bits = 4, .nexthop_bits = 4, .attr_bits = 4};
  VnhAllocator alloc(Ipv4Prefix::parse("172.16.0.0/12"), small);
  std::vector<MacAddress> macs;
  for (int i = 0; i < 16; ++i) macs.push_back(alloc.allocate().vmac);
  for (std::size_t i = 0; i < macs.size(); ++i) {
    for (std::size_t j = i + 1; j < macs.size(); ++j) {
      EXPECT_NE(macs[i], macs[j]);
    }
  }
  // Allocation #16 does not fit 4 group bits: the counter would spill into
  // the next-hop field. The error names the allocation, the budget and the
  // layout.
  try {
    alloc.allocate();
    FAIL() << "expected std::length_error";
  } catch (const std::length_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("group-id field exhausted"), std::string::npos)
        << what;
    EXPECT_NE(what.find("#16"), std::string::npos) << what;
    EXPECT_NE(what.find("4 group bits"), std::string::npos) << what;
  }
}

TEST(VnhAllocatorTest, AttributeOverflowsAreRejected) {
  const VmacLayout small{.group_bits = 8, .nexthop_bits = 3, .attr_bits = 2};
  VnhAllocator alloc(Ipv4Prefix::parse("172.16.0.0/12"), small);
  // In range: slot+1 up to 7, attrs up to 0b11.
  EXPECT_NO_THROW(alloc.allocate_attributed(7, 0b11));
  EXPECT_THROW(alloc.allocate_attributed(8, 0), std::invalid_argument);
  EXPECT_THROW(alloc.allocate_attributed(0, 0b100), std::invalid_argument);
  // Failed allocations must not burn group ids.
  const auto before = alloc.allocated();
  EXPECT_THROW(alloc.allocate_attributed(8, 0), std::invalid_argument);
  EXPECT_EQ(alloc.allocated(), before);
}

TEST(VnhAllocatorTest, RestoreValidatesGroupBudget) {
  const VmacLayout small{.group_bits = 4, .nexthop_bits = 4, .attr_bits = 4};
  VnhAllocator alloc(Ipv4Prefix::parse("172.16.0.0/12"), small);
  EXPECT_NO_THROW(alloc.restore(16));  // full watermark is fine...
  EXPECT_THROW(alloc.allocate(), std::length_error);  // ...but it is full
  EXPECT_THROW(alloc.restore(17), std::length_error);
}

TEST(VnhAllocatorTest, InvalidLayoutRejectedAtConstruction) {
  EXPECT_THROW(
      VnhAllocator(Ipv4Prefix::parse("172.16.0.0/12"),
                   VmacLayout{.group_bits = 0, .nexthop_bits = 4,
                              .attr_bits = 4}),
      std::invalid_argument);
}

// --- masked dst-MAC matching in the classifier and flow table ----------------

TEST(MaskedMatchTest, IntersectAndSubsumeAreExactForArbitraryMasks) {
  VmacLayout l;
  const FieldMatch a = l.attr_bit_match(0);
  const FieldMatch b = l.attr_bit_match(1);
  // Two single-bit constraints on different bits intersect: the result
  // requires both bits.
  const auto both = a.intersect(b);
  ASSERT_TRUE(both.has_value());
  EXPECT_TRUE(both->matches(l.encode(3, 0, 0b11).bits()));
  EXPECT_FALSE(both->matches(l.encode(3, 0, 0b01).bits()));
  EXPECT_FALSE(both->matches(l.encode(3, 0, 0b10).bits()));
  // A bit-set constraint conflicts with the same bit required clear.
  const FieldMatch a_clear =
      FieldMatch::masked(VmacLayout::kTopOctetValue,
                         VmacLayout::kTopOctetMask | (1ull << l.attr_shift()));
  EXPECT_FALSE(a.intersect(a_clear).has_value());
  // The masked constraint subsumes every exact VMAC carrying the bit.
  EXPECT_TRUE(a.subsumes(FieldMatch::exact(l.encode(9, 5, 0b101).bits())));
  EXPECT_FALSE(a.subsumes(FieldMatch::exact(l.encode(9, 5, 0b100).bits())));
}

TEST(MaskedMatchTest, FlowTablePriorityDecidesMaskedVsExactOverlap) {
  VmacLayout l;
  dp::FlowTable t;
  const MacAddress tagged = l.encode(5, 2, 1u << 3);

  dp::FlowRule masked;
  masked.priority = 10;
  masked.match.set(Field::kDstMac, l.attr_bit_match(3));
  masked.actions = {ActionSeq::set(Field::kPort, 1)};
  t.install(masked);

  dp::FlowRule exact;
  exact.priority = 20;
  exact.match = FlowMatch::on(Field::kDstMac, tagged.bits());
  exact.actions = {ActionSeq::set(Field::kPort, 2)};
  t.install(exact);

  // The overlapping VMAC hits the higher-priority exact rule; any other
  // tag carrying bit 3 falls to the masked rule; a tag without the bit —
  // and a router MAC — miss both.
  auto out = t.process(PacketBuilder().dst_mac(tagged).build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), 2u);
  out = t.process(
      PacketBuilder().dst_mac(l.encode(6, 0, 1u << 3)).build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), 1u);
  EXPECT_TRUE(
      t.process(PacketBuilder().dst_mac(l.encode(5, 2, 0)).build()).empty());
  EXPECT_TRUE(
      t.process(PacketBuilder().dst_mac(MacAddress(0x00'16'3E'00'00'05ull))
                    .build())
          .empty());
}

TEST(MaskedMatchTest, ClassifierOptimizeDedupsMaskedDuplicates) {
  VmacLayout l;
  FlowMatch masked;
  masked.set(Field::kDstMac, l.attr_bit_match(2));
  FlowMatch exact = FlowMatch::on(Field::kDstMac, l.encode(0, 0, 1u << 2).bits());

  Classifier c({
      Rule{masked, {ActionSeq::set(Field::kPort, 1)}},
      Rule{masked, {ActionSeq::set(Field::kPort, 9)}},  // duplicate match
      Rule{exact, {ActionSeq::set(Field::kPort, 2)}},   // same value, full mask
  });
  c.optimize(false);
  ASSERT_EQ(c.size(), 2u);  // duplicate masked rule dropped, first wins
  EXPECT_EQ(c.rules()[0].actions.front().written(Field::kPort), 1u);
  EXPECT_EQ(c.rules()[1].match.field(Field::kDstMac),
            FieldMatch::exact(l.encode(0, 0, 1u << 2).bits()));
}

// --- partitioned runtime -----------------------------------------------------

/// The reproducible exchange: A steers port-80 traffic to B and port-443
/// traffic to C; B announces two prefixes, C one.
void build_exchange(SdxRuntime& r) {
  auto pa = r.add_participant("A", 65001);
  auto pb = r.add_participant("B", 65002);
  auto pc = r.add_participant("C", 65003);
  r.set_outbound(pa, {OutboundClause{ClauseMatch{}.dst_port(80), pb},
                      OutboundClause{ClauseMatch{}.dst_port(443), pc}});
  r.set_outbound(pc, {OutboundClause{ClauseMatch{}.dst_port(80), pa}});
  r.announce(pb, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65002, 7});
  r.announce(pb, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65002, 7});
  // C also announces 100.1/16 with a longer path: B stays the best route,
  // but steering clauses targeting C now reach the prefix — steered and
  // default forwarding become observably different.
  r.announce(pc, Ipv4Prefix::parse("100.1.0.0/16"),
             net::AsPath{65003, 8, 9});
  r.announce(pc, Ipv4Prefix::parse("100.9.0.0/16"), net::AsPath{65003});
  r.announce(pa, Ipv4Prefix::parse("100.7.0.0/16"), net::AsPath{65001});
  r.install();
}

/// Forwarding signature over every (sender, prefix, port) probe: egress
/// port and acceptance, like the differential oracle's probes. VMACs are
/// deliberately excluded — the two pipelines tag differently by design.
std::vector<std::string> probe_all(SdxRuntime& r) {
  std::vector<std::string> out;
  for (ParticipantId s : {1, 2, 3}) {
    for (const char* dst :
         {"100.1.2.3", "100.2.4.5", "100.9.6.7", "100.7.8.9", "100.250.0.1"}) {
      for (std::uint16_t port : {80, 443, 53}) {
        auto deliveries = r.send(s, PacketBuilder()
                                        .src_ip("192.0.2.1")
                                        .dst_ip(dst)
                                        .proto(net::kProtoTcp)
                                        .dst_port(port)
                                        .build());
        std::ostringstream line;
        line << s << "->" << dst << ":" << port << " =";
        if (deliveries.empty()) line << " drop";
        for (const auto& d : deliveries) {
          line << " port" << d.port << (d.accepted ? "+" : "-");
        }
        out.push_back(line.str());
      }
    }
  }
  return out;
}

CompileOptions partitioned_options() {
  CompileOptions opt;
  opt.partitioned = true;
  return opt;
}

TEST(PartitionedRuntime, ForwardsIdenticallyToPairwise) {
  SdxRuntime pairwise;
  build_exchange(pairwise);
  SdxRuntime parted({}, partitioned_options());
  build_exchange(parted);
  EXPECT_FALSE(pairwise.compiled().partitioned);
  EXPECT_TRUE(parted.compiled().partitioned);
  EXPECT_EQ(probe_all(pairwise), probe_all(parted));
}

TEST(PartitionedRuntime, CompiledArtifactCarriesPartitions) {
  SdxRuntime rt({}, partitioned_options());
  build_exchange(rt);
  const CompiledSdx& c = rt.compiled();
  ASSERT_EQ(c.partitions.size(), 3u);
  EXPECT_EQ(c.layout, VmacLayout{});
  // The pairwise cross-product artifacts stay empty in partitioned mode.
  EXPECT_TRUE(c.fecs.groups.empty());
  EXPECT_TRUE(c.reaches.empty());
  // A (slot 0) has two clauses → masked stage-1 rules; its partition's
  // bindings carry the clause-membership attribute bits.
  EXPECT_GT(c.partitions[0].stage1_rules, 0u);
  EXPECT_EQ(c.partitions[0].owner, 1u);
  bool saw_attr = false;
  for (const auto& b : c.partitions[0].bindings) {
    saw_attr |= c.layout.attrs_of(b.vmac) != 0;
  }
  EXPECT_TRUE(saw_attr);
  // B (slot 1) has no outbound clauses: no composed partition rules, its
  // traffic rides the shared band's masked next-hop defaults.
  EXPECT_EQ(c.partitions[1].stage1_rules, 0u);
  EXPECT_GT(c.shared_rules.size(), 0u);
  // The fabric is exactly the slot-ordered partition concat + shared band.
  std::size_t expected = c.shared_rules.size();
  for (const auto& part : c.partitions) expected += part.rules.size();
  EXPECT_EQ(c.fabric.size(), expected);
}

TEST(PartitionedRuntime, FingerprintStableAcrossThreadCounts) {
  auto fingerprint = [](unsigned threads) {
    CompileOptions opt = partitioned_options();
    opt.threads = threads;
    SdxRuntime rt({}, opt);
    build_exchange(rt);
    return rt.compiled().fingerprint();
  };
  const std::string serial = fingerprint(1);
  EXPECT_EQ(serial, fingerprint(4));
  EXPECT_EQ(serial, fingerprint(8));
  EXPECT_NE(serial.find("partitioned"), std::string::npos);
  EXPECT_NE(serial.find("vmac-layout/v1"), std::string::npos);
}

TEST(PartitionedRuntime, PolicyChangeRecompilesOnlyTheDirtyPartition) {
  SdxRuntime rt({}, partitioned_options());
  build_exchange(rt);
  auto counter = [&rt](const char* name) {
    return rt.telemetry().metrics.counter(name).value();
  };
  ASSERT_EQ(counter("sdx_partitions_recompiled_total"), 0u);
  ASSERT_EQ(counter("sdx_compile_runs_total"), 1u);
  const std::string b_rules = rt.compiled().partitions[1].rules.to_string();
  const std::string c_rules = rt.compiled().partitions[2].rules.to_string();
  const std::string shared = rt.compiled().shared_rules.to_string();

  // Swap A's steering: port 80 now goes to C, 443 unsteered.
  rt.set_outbound(1, {OutboundClause{ClauseMatch{}.dst_port(80), 3}});

  // Exactly one partition recompiled, zero full pipeline runs; B's and C's
  // partitions and the shared band are byte-identical.
  EXPECT_EQ(counter("sdx_partitions_recompiled_total"), 1u);
  EXPECT_EQ(counter("sdx_compile_runs_total"), 1u);
  EXPECT_EQ(rt.compiled().partitions[1].rules.to_string(), b_rules);
  EXPECT_EQ(rt.compiled().partitions[2].rules.to_string(), c_rules);
  EXPECT_EQ(rt.compiled().shared_rules.to_string(), shared);

  // And the data plane follows the new policy: A's port-80 traffic to B's
  // prefix now egresses at C, port-443 falls back to the default (B).
  auto egress = [&rt](std::uint16_t port) {
    auto out = rt.send(1, PacketBuilder()
                              .dst_ip("100.1.2.3")
                              .proto(net::kProtoTcp)
                              .dst_port(port)
                              .build());
    return out.size() == 1 ? out[0].port : net::PortId{0};
  };
  SdxRuntime want;  // pairwise reference for the changed policy
  build_exchange(want);
  want.set_outbound(1, {OutboundClause{ClauseMatch{}.dst_port(80), 3}});
  want.background_recompile();
  auto want_egress = [&want](std::uint16_t port) {
    auto out = want.send(1, PacketBuilder()
                                .dst_ip("100.1.2.3")
                                .proto(net::kProtoTcp)
                                .dst_port(port)
                                .build());
    return out.size() == 1 ? out[0].port : net::PortId{0};
  };
  EXPECT_EQ(egress(80), want_egress(80));
  EXPECT_EQ(egress(443), want_egress(443));
  EXPECT_NE(egress(80), egress(443));
}

TEST(PartitionedRuntime, WarmRestartRoundTripsPartitionedArtifact) {
  TempDir dir;
  SdxRuntime rt({}, partitioned_options());
  build_exchange(rt);
  rt.attach_journal(dir.path);
  const std::string fp = rt.compiled().fingerprint();
  const auto expected = probe_all(rt);

  SdxRuntime rt2({}, partitioned_options());
  const auto report = rt2.recover(dir.path);
  EXPECT_TRUE(report.warm);
  EXPECT_EQ(rt2.telemetry().metrics.counter("sdx_compile_runs_total").value(),
            0u);
  ASSERT_TRUE(rt2.installed());
  EXPECT_TRUE(rt2.compiled().partitioned);
  EXPECT_EQ(rt2.compiled().partitions.size(), 3u);
  EXPECT_EQ(rt2.compiled().fingerprint(), fp);
  EXPECT_EQ(probe_all(rt2), expected);

  // The adopted bands stay live: a post-recovery policy change still
  // recompiles exactly one partition.
  rt2.set_outbound(1, {OutboundClause{ClauseMatch{}.dst_port(80), 3}});
  EXPECT_EQ(rt2.telemetry()
                .metrics.counter("sdx_partitions_recompiled_total")
                .value(),
            1u);
}

TEST(PartitionedRuntime, LayoutChangeForcesColdInstall) {
  TempDir dir;
  SdxRuntime rt;
  build_exchange(rt);
  rt.attach_journal(dir.path);
  const auto expected = probe_all(rt);

  // Same inputs, different VMAC layout: the persisted tables encode tags
  // under the old layout, so the warm gate must refuse them.
  CompileOptions opt;
  opt.vmac_layout = VmacLayout{.group_bits = 16, .nexthop_bits = 16,
                               .attr_bits = 8};
  SdxRuntime rt2({}, opt);
  const auto report = rt2.recover(dir.path);
  EXPECT_FALSE(report.warm);
  EXPECT_EQ(rt2.telemetry().metrics.counter("sdx_recovery_cold_total").value(),
            1u);
  // The cold install recompiles the same forwarding behaviour from the
  // replayed inputs.
  EXPECT_EQ(probe_all(rt2), expected);
}

TEST(PartitionedRuntime, ModeChangeForcesColdInstall) {
  TempDir dir;
  SdxRuntime rt;  // pairwise
  build_exchange(rt);
  rt.attach_journal(dir.path);
  const auto expected = probe_all(rt);

  SdxRuntime rt2({}, partitioned_options());
  const auto report = rt2.recover(dir.path);
  EXPECT_FALSE(report.warm);
  ASSERT_TRUE(rt2.installed());
  EXPECT_TRUE(rt2.compiled().partitioned);
  EXPECT_EQ(probe_all(rt2), expected);
}

}  // namespace
}  // namespace sdx::core
