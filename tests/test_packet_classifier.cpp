/// Tests for the data-plane classification pipeline: randomized
/// differential equivalence against the linear reference scan, VMAC lane
/// semantics under the active bit layout, arena invariants across
/// remove_by_cookie/clear, and multi-threaded lookup accounting (the TSan
/// target for the satellite counter fix).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dataplane/flow_table.hpp"
#include "netbase/rng.hpp"

namespace sdx::dp {
namespace {

using net::Field;
using net::FieldMatch;
using net::FlowMatch;
using net::Ipv4Prefix;
using net::PacketBuilder;
using net::PacketHeader;
using net::SplitMix64;
using policy::ActionSeq;

/// The default iSDX geometry, described straight to the data plane (the
/// runtime derives the same spec from core::VmacLayout::lane_spec()).
VmacLaneSpec default_spec() {
  VmacLaneSpec s;
  s.enabled = true;
  s.top_value = 0x02ull << 40;
  s.top_mask = 0xFFull << 40;
  s.group_bits = 20;
  s.nexthop_bits = 12;
  s.attr_bits = 8;
  return s;
}

std::uint64_t encode_vmac(const VmacLaneSpec& s, std::uint64_t group,
                          std::uint64_t nh, std::uint64_t attrs) {
  return s.top_value | (attrs << s.attr_shift()) |
         (nh << s.nexthop_shift()) | group;
}

FlowRule rule(std::uint32_t priority, FlowMatch match, net::PortId out,
              std::uint64_t cookie = 0) {
  FlowRule r;
  r.priority = priority;
  r.match = std::move(match);
  r.actions = {ActionSeq::set(Field::kPort, out)};
  r.cookie = cookie;
  return r;
}

/// Draws a random rule from the shape population a compiled SDX table
/// actually contains, plus adversarial extras (overlapping masks, ties).
FlowRule random_rule(SplitMix64& rng, const VmacLaneSpec& spec, int i) {
  // Narrow priority range on purpose: ties must be common.
  const auto prio = static_cast<std::uint32_t>(rng.range(0, 8));
  const auto out = static_cast<net::PortId>(i + 1);
  const std::uint64_t cookie = rng.range(1, 4);
  FlowMatch m;
  switch (rng.below(8)) {
    case 0:  // per-group default: exact VMAC
      m = FlowMatch::on(Field::kDstMac,
                        encode_vmac(spec, rng.below(64), rng.below(8),
                                    rng.below(16)));
      break;
    case 1:  // next-hop lane shape
      m.set(Field::kDstMac,
            FieldMatch::masked(
                spec.top_value | (rng.below(8) << spec.nexthop_shift()),
                spec.top_mask | spec.nexthop_field_mask()));
      break;
    case 2: {  // attribute-bit shape
      const std::uint64_t b = 1ull << (spec.attr_shift() + rng.below(8));
      m.set(Field::kDstMac,
            FieldMatch::masked(spec.top_value | b, spec.top_mask | b));
      break;
    }
    case 3: {  // clause rule: port + attribute bit + transport field
      const std::uint64_t b = 1ull << (spec.attr_shift() + rng.below(8));
      m.set(Field::kPort, FieldMatch::exact(rng.range(1, 4)));
      m.set(Field::kDstMac,
            FieldMatch::masked(spec.top_value | b, spec.top_mask | b));
      if (rng.below(2) == 0) {
        m.set(Field::kDstPort, FieldMatch::exact(rng.below(4) * 100));
      }
      break;
    }
    case 4:  // FIB-style CIDR rule
      m.set(Field::kDstIp,
            FieldMatch::prefix(Ipv4Prefix(
                net::Ipv4Address(static_cast<std::uint32_t>(rng()) &
                                 0xFFFF0000u),
                static_cast<int>(rng.range(8, 24)))));
      break;
    case 5:  // src+dst CIDR pair
      m.set(Field::kSrcIp,
            FieldMatch::prefix(Ipv4Prefix(
                net::Ipv4Address(static_cast<std::uint32_t>(rng()) &
                                 0xFF000000u),
                8)));
      m.set(Field::kDstIp,
            FieldMatch::prefix(Ipv4Prefix(
                net::Ipv4Address(static_cast<std::uint32_t>(rng()) &
                                 0xFFFFFF00u),
                static_cast<int>(rng.range(16, 28)))));
      break;
    case 6: {  // adversarial: arbitrary mask over the dst-MAC, no guard
      const std::uint64_t mask = rng() & ((1ull << 48) - 1);
      m.set(Field::kDstMac, FieldMatch::masked(rng(), mask));
      break;
    }
    default:  // wildcard catch-all (every table has one)
      break;
  }
  FlowRule r = rule(prio, std::move(m), out, cookie);
  if (rng.below(8) == 0) r.actions.clear();  // some rules drop
  return r;
}

/// A packet biased to hit \p target: constrained bits come from the rule,
/// free bits are random.
PacketHeader packet_matching(SplitMix64& rng, const FlowMatch& m) {
  PacketHeader h;
  for (auto f : net::kAllFields) {
    const FieldMatch& fm = m.field(f);
    std::uint64_t v = rng();
    if (f == Field::kDstMac || f == Field::kSrcMac) v &= (1ull << 48) - 1;
    if (net::is_ip_field(f)) v &= 0xFFFFFFFFull;
    if (f == Field::kPort) v = rng.range(1, 4);
    h.set(f, (fm.value() & fm.mask()) | (v & ~fm.mask()));
  }
  return h;
}

PacketHeader random_packet(SplitMix64& rng, const VmacLaneSpec& spec) {
  PacketHeader h;
  for (auto f : net::kAllFields) h.set(f, rng());
  // Half the traffic is VMAC-tagged — the common case in deployment.
  if (rng.below(2) == 0) {
    h.set(Field::kDstMac,
          encode_vmac(spec, rng.below(64), rng.below(8), rng.below(16)));
  } else {
    h.set(Field::kDstMac, h.get(Field::kDstMac) & ((1ull << 48) - 1));
  }
  return h;
}

/// Compares the classified and linear answers for the identical table; the
/// strictest possible check — same rule object, not just same action.
void expect_equivalent(FlowTable& t, const PacketHeader& h) {
  t.set_lookup_mode(FlowTable::LookupMode::kClassified);
  const FlowRule* classified = t.lookup(h);
  t.set_lookup_mode(FlowTable::LookupMode::kLinear);
  const FlowRule* linear = t.lookup(h);
  t.set_lookup_mode(FlowTable::LookupMode::kClassified);
  ASSERT_EQ(classified, linear)
      << "packet " << h.to_string() << "\nclassified: "
      << (classified != nullptr ? classified->to_string() : "miss")
      << "\nlinear:     "
      << (linear != nullptr ? linear->to_string() : "miss");
}

TEST(PacketClassifierDiff, RandomizedRulesAndPacketsMatchLinearReference) {
  SplitMix64 rng(20260808);
  const VmacLaneSpec spec = default_spec();
  for (int round = 0; round < 8; ++round) {
    FlowTable t;
    t.set_vmac_lanes(spec);
    std::vector<FlowMatch> matches;
    const int n = 8 << round;  // 8 .. 1024 rules
    for (int i = 0; i < n; ++i) {
      FlowRule r = random_rule(rng, spec, i);
      matches.push_back(r.match);
      t.install(std::move(r));
    }
    for (int i = 0; i < 400; ++i) {
      const PacketHeader h =
          i % 2 == 0 ? packet_matching(
                           rng, matches[rng.below(matches.size())])
                     : random_packet(rng, spec);
      expect_equivalent(t, h);
    }
  }
}

TEST(PacketClassifierDiff, EquivalenceHoldsAcrossRemovalAndClear) {
  SplitMix64 rng(77);
  const VmacLaneSpec spec = default_spec();
  FlowTable t;
  t.set_vmac_lanes(spec);
  std::vector<FlowMatch> matches;
  for (int i = 0; i < 300; ++i) {
    FlowRule r = random_rule(rng, spec, i);
    matches.push_back(r.match);
    t.install(std::move(r));
  }
  auto verify = [&] {
    for (int i = 0; i < 200; ++i) {
      const PacketHeader h =
          i % 2 == 0 ? packet_matching(
                           rng, matches[rng.below(matches.size())])
                     : random_packet(rng, spec);
      expect_equivalent(t, h);
    }
  };
  verify();
  for (std::uint64_t cookie = 1; cookie <= 4; ++cookie) {
    const std::size_t before = t.size();
    const std::size_t removed = t.remove_by_cookie(cookie);
    EXPECT_EQ(t.size(), before - removed);
    EXPECT_EQ(t.remove_by_cookie(cookie), 0u);  // idempotent
    verify();
  }
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.lookup(random_packet(rng, spec)), nullptr);

  // Slots are recycled after clear/removal; the table must behave as new.
  for (int i = 0; i < 100; ++i) t.install(random_rule(rng, spec, i));
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  for (int i = 0; i < 100; ++i) {
    FlowRule r = random_rule(rng, spec, i);
    matches[static_cast<std::size_t>(i)] = r.match;
    t.install(std::move(r));
  }
  EXPECT_EQ(t.size(), 100u);
  verify();
}

TEST(PacketClassifierLanes, ExactVmacBeatsAttrBitByPriorityNotLane) {
  const VmacLaneSpec spec = default_spec();
  FlowTable t;
  t.set_vmac_lanes(spec);
  const std::uint64_t vmac = encode_vmac(spec, 7, 0, /*attrs=*/0b1000);
  const std::uint64_t bit = 1ull << (spec.attr_shift() + 3);
  FlowMatch attr;
  attr.set(Field::kDstMac,
           FieldMatch::masked(spec.top_value | bit, spec.top_mask | bit));
  t.install(rule(10, attr, 1));
  t.install(rule(20, FlowMatch::on(Field::kDstMac, vmac), 2));

  // Overlap: the exact rule has higher priority and must win even though
  // the attr lane would also match.
  auto out = t.process(PacketBuilder().dst_mac(net::MacAddress(vmac)).build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), 2u);

  // A different group carrying the bit falls through to the masked rule.
  const std::uint64_t other = encode_vmac(spec, 9, 0, 0b1000);
  out = t.process(PacketBuilder().dst_mac(net::MacAddress(other)).build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), 1u);

  // No attribute bit → miss.
  const std::uint64_t plain = encode_vmac(spec, 9, 0, 0);
  EXPECT_TRUE(
      t.process(PacketBuilder().dst_mac(net::MacAddress(plain)).build())
          .empty());

  const auto stats = t.classifier().stats();
  EXPECT_EQ(stats.exact_mac_rules, 1u);
  EXPECT_EQ(stats.attr_lane_rules, 1u);
  EXPECT_EQ(stats.tuple_rules, 0u);
}

TEST(PacketClassifierLanes, RouterMacsNeverHitAttrLanes) {
  // 00:16:3e:… has bits set in attribute positions; the top-octet guard in
  // the lane probe must keep untagged MACs out.
  const VmacLaneSpec spec = default_spec();
  FlowTable t;
  t.set_vmac_lanes(spec);
  const std::uint64_t bit = 1ull << (spec.attr_shift() + 4);
  FlowMatch attr;
  attr.set(Field::kDstMac,
           FieldMatch::masked(spec.top_value | bit, spec.top_mask | bit));
  t.install(rule(10, attr, 1));
  const std::uint64_t router = 0x00'16'3E'00'00'01ull | bit;
  EXPECT_EQ(t.lookup(PacketBuilder()
                         .dst_mac(net::MacAddress(router))
                         .build()),
            nullptr);
}

TEST(PacketClassifierLanes, NexthopLaneDecodesField) {
  const VmacLaneSpec spec = default_spec();
  FlowTable t;
  t.set_vmac_lanes(spec);
  FlowMatch nh;
  nh.set(Field::kDstMac,
         FieldMatch::masked(spec.top_value | (5ull << spec.nexthop_shift()),
                            spec.top_mask | spec.nexthop_field_mask()));
  t.install(rule(10, nh, 1));
  EXPECT_EQ(t.classifier().stats().nexthop_lane_rules, 1u);

  const std::uint64_t tagged = encode_vmac(spec, 123, 5, 0b101);
  const FlowRule* hit =
      t.lookup(PacketBuilder().dst_mac(net::MacAddress(tagged)).build());
  ASSERT_NE(hit, nullptr);
  const std::uint64_t wrong_nh = encode_vmac(spec, 123, 6, 0b101);
  EXPECT_EQ(
      t.lookup(PacketBuilder().dst_mac(net::MacAddress(wrong_nh)).build()),
      nullptr);
}

TEST(PacketClassifierLanes, SettingLanesAfterInstallReindexesRules) {
  SplitMix64 rng(99);
  const VmacLaneSpec spec = default_spec();
  FlowTable t;  // spec disabled: everything lands in tuples
  std::vector<FlowRule> installed;
  for (int i = 0; i < 200; ++i) {
    FlowRule r = random_rule(rng, spec, i);
    installed.push_back(r);
    t.install(std::move(r));
  }
  EXPECT_EQ(t.classifier().stats().nexthop_lane_rules, 0u);
  EXPECT_EQ(t.classifier().stats().attr_lane_rules, 0u);

  std::vector<PacketHeader> probes;
  std::vector<const FlowRule*> before;
  for (int i = 0; i < 300; ++i) {
    probes.push_back(
        i % 2 == 0
            ? packet_matching(rng,
                              installed[rng.below(installed.size())].match)
            : random_packet(rng, spec));
    before.push_back(t.lookup(probes.back()));
  }
  t.set_vmac_lanes(spec);  // re-index everything against the layout
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(t.lookup(probes[i]), before[i]);
    expect_equivalent(t, probes[i]);
  }
  // The masked layout shapes must actually have moved into the lanes.
  const auto stats = t.classifier().stats();
  EXPECT_GT(stats.nexthop_lane_rules + stats.attr_lane_rules, 0u);
  EXPECT_GT(stats.exact_mac_rules, 0u);
}

TEST(PacketClassifierConcurrency, ParallelProcessKeepsCountsConsistent) {
  const VmacLaneSpec spec = default_spec();
  FlowTable t;
  t.set_vmac_lanes(spec);
  constexpr int kRules = 64;
  for (int i = 0; i < kRules; ++i) {
    t.install(rule(10, FlowMatch::on(Field::kDstMac,
                                     encode_vmac(spec, i, 0, 0)),
                   static_cast<net::PortId>(i + 1)));
  }
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&t, &spec, w] {
      SplitMix64 rng(static_cast<std::uint64_t>(w) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        // ~3/4 hits (existing groups), ~1/4 misses (group out of range).
        const std::uint64_t group = rng.below(kRules + kRules / 3);
        t.process(PacketBuilder()
                      .dst_mac(net::MacAddress(encode_vmac(spec, group, 0, 0)))
                      .build());
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(t.total_matched() + t.total_missed(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t per_rule = 0;
  for (const FlowRule* r : t.rules()) per_rule += r->packet_count.value();
  EXPECT_EQ(per_rule, t.total_matched());
  EXPECT_GT(t.total_matched(), 0u);
  EXPECT_GT(t.total_missed(), 0u);
}

TEST(PacketClassifierCorruption, TestSeamMakesClassifiedDivergeFromLinear) {
  FlowTable t;
  t.install(rule(10, FlowMatch::on(Field::kDstPort, 80), 1));
  const auto h = PacketBuilder().dst_port(80).build();
  ASSERT_NE(t.lookup(h), nullptr);
  t.corrupt_classifier_for_test();
  EXPECT_EQ(t.lookup(h), nullptr);  // classified view lost the rule
  t.set_lookup_mode(FlowTable::LookupMode::kLinear);
  EXPECT_NE(t.lookup(h), nullptr);  // reference still sees it
}

}  // namespace
}  // namespace sdx::dp
