/// Unit tests for the telemetry subsystem: instrument semantics, registry
/// get-or-create identity, deterministic exposition, span tracing, and
/// thread safety of the fast paths under the compilation thread pool
/// (run the SDX_SANITIZE=thread preset to let TSan check the latter).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netbase/parallel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace sdx::telemetry {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAddGoBothWays) {
  Gauge g;
  g.set(10.0);
  g.add(-3.5);
  EXPECT_DOUBLE_EQ(g.value(), 6.5);
  g.set(0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsObservationsCumulatively) {
  Histogram h({1.0, 10.0, 100.0});
  for (double v : {0.5, 5.0, 5.0, 50.0, 500.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 560.5);
  // Cumulative per upper edge, +Inf last: ≤1 → 1, ≤10 → 3, ≤100 → 4, all 5.
  EXPECT_EQ(h.cumulative(), (std::vector<std::uint64_t>{1, 3, 4, 5}));
}

TEST(Histogram, BoundaryValueFallsInLowerBucket) {
  Histogram h({1.0, 10.0});
  h.observe(1.0);  // `le` edges are inclusive, as in Prometheus
  EXPECT_EQ(h.cumulative()[0], 1u);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({10.0, 1.0}), std::invalid_argument);
}

TEST(Registry, GetOrCreateReturnsTheSameInstrument) {
  MetricRegistry reg;
  Counter& a = reg.counter("sdx_updates_total", "updates seen");
  Counter& b = reg.counter("sdx_updates_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);

  // Distinct label sets are distinct instruments; label order is
  // normalized so a permuted registration finds the same one.
  Counter& x = reg.counter("sdx_rules_total", "", {{"stage", "synth"}});
  Counter& y = reg.counter("sdx_rules_total", "", {{"stage", "compose"}});
  EXPECT_NE(&x, &y);
  Counter& x2 = reg.counter("sdx_rules_total", "",
                            {{"stage", "synth"}});
  EXPECT_EQ(&x, &x2);
  Gauge& g1 = reg.gauge("sdx_depth", "", {{"a", "1"}, {"b", "2"}});
  Gauge& g2 = reg.gauge("sdx_depth", "", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&g1, &g2);
}

TEST(Registry, KindMismatchThrows) {
  MetricRegistry reg;
  reg.counter("sdx_thing_total");
  EXPECT_THROW(reg.gauge("sdx_thing_total"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("sdx_thing_total"), std::invalid_argument);
  reg.histogram("sdx_lat_seconds", "", {0.1, 1.0});
  EXPECT_THROW(reg.histogram("sdx_lat_seconds", "", {0.5, 1.0}),
               std::invalid_argument);
}

TEST(Registry, PrometheusRenderingIsExactAndSorted) {
  MetricRegistry reg;
  // Registered out of name order on purpose: exposition sorts by name.
  reg.gauge("sdx_rib_prefixes", "prefixes in the RIB").set(7);
  Counter& c = reg.counter("sdx_announcements_total", "BGP announcements");
  c.inc(12);
  Histogram& h =
      reg.histogram("sdx_compile_seconds", "compile latency", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);

  const std::string expected =
      "# HELP sdx_announcements_total BGP announcements\n"
      "# TYPE sdx_announcements_total counter\n"
      "sdx_announcements_total 12\n"
      "# HELP sdx_compile_seconds compile latency\n"
      "# TYPE sdx_compile_seconds histogram\n"
      "sdx_compile_seconds_bucket{le=\"0.1\"} 1\n"
      "sdx_compile_seconds_bucket{le=\"1\"} 2\n"
      "sdx_compile_seconds_bucket{le=\"+Inf\"} 2\n"
      "sdx_compile_seconds_sum 0.55\n"
      "sdx_compile_seconds_count 2\n"
      "# HELP sdx_rib_prefixes prefixes in the RIB\n"
      "# TYPE sdx_rib_prefixes gauge\n"
      "sdx_rib_prefixes 7\n";
  EXPECT_EQ(reg.render_prometheus(), expected);
}

TEST(Registry, JsonSnapshotCarriesEveryInstrument) {
  MetricRegistry reg;
  reg.counter("sdx_updates_total", "", {{"peer", "a"}}).inc(2);
  reg.gauge("sdx_occupancy").set(3.5);
  reg.histogram("sdx_wait_seconds", "", {1.0}).observe(0.25);
  const std::string json = reg.render_json();
  EXPECT_NE(json.find("{\"name\":\"sdx_updates_total\",\"labels\":"
                      "{\"peer\":\"a\"},\"value\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"sdx_occupancy\",\"labels\":{},"
                      "\"value\":3.5}"),
            std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[{\"le\":\"1\",\"count\":1},"
                      "{\"le\":\"+Inf\",\"count\":1}]"),
            std::string::npos);
}

TEST(Registry, ConcurrentUpdatesFromTheThreadPoolAreExact) {
  // The instruments' fast paths are lock-free; hammer one counter, one
  // gauge and one histogram from every pool thread and check nothing is
  // lost. Under -DSDX_SANITIZE=thread this is the TSan witness for the
  // whole measurement plane.
  MetricRegistry reg;
  Counter& c = reg.counter("sdx_ops_total");
  Gauge& g = reg.gauge("sdx_inflight");
  Histogram& h = reg.histogram("sdx_op_seconds", "", {0.5});
  net::ThreadPool pool(4);
  constexpr std::size_t kOps = 20000;
  pool.parallel_for(kOps, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      c.inc();
      g.add(1.0);
      h.observe(i % 2 == 0 ? 0.25 : 0.75);
      // Get-or-create races against updates too.
      reg.counter("sdx_ops_total").inc();
    }
  });
  EXPECT_EQ(c.value(), 2 * kOps);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kOps));
  EXPECT_EQ(h.count(), kOps);
  EXPECT_EQ(h.cumulative(), (std::vector<std::uint64_t>{kOps / 2, kOps}));
}

TEST(Tracer, RecordsNestedSpansPositionally) {
  SpanTracer tracer;
  {
    Span outer = tracer.span("compile");
    { Span inner = tracer.span("synth"); }
  }
  auto records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  // Completion order: inner closes first.
  EXPECT_EQ(records[0].name, "synth");
  EXPECT_EQ(records[1].name, "compile");
  EXPECT_TRUE(records[1].encloses(records[0]));
  EXPECT_FALSE(records[0].encloses(records[1]));
}

TEST(Tracer, SpanIsMoveOnlyAndFinishIsIdempotent) {
  SpanTracer tracer;
  Span a = tracer.span("work");
  Span b = std::move(a);
  b.finish();
  b.finish();
  a.finish();  // moved-from span is inert
  EXPECT_EQ(tracer.records().size(), 1u);

  // A null tracer produces no records and no crashes.
  Span inert(nullptr, "ghost");
  inert.finish();
  EXPECT_EQ(tracer.records().size(), 1u);
}

TEST(Tracer, ChromeJsonHasCompleteEvents) {
  SpanTracer tracer;
  { Span s = tracer.span("stage \"one\""); }
  const std::string json = tracer.render_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stage \\\"one\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  tracer.clear();
  EXPECT_EQ(tracer.records().size(), 0u);
  EXPECT_EQ(tracer.render_chrome_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

TEST(Tracer, ThreadsGetDistinctStableTids) {
  SpanTracer tracer;
  net::ThreadPool pool(3);
  pool.parallel_for(64, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      Span s = tracer.span("chunk");
    }
  });
  auto records = tracer.records();
  ASSERT_EQ(records.size(), 64u);
  for (const auto& r : records) EXPECT_LT(r.tid, 3u);
}

}  // namespace
}  // namespace sdx::telemetry
