/// Model-based fuzz testing of the route server: a deliberately naive
/// reference model (flat maps, best recomputed from scratch with the same
/// decision function) is driven with the same random announce/withdraw
/// sequence, and every observable — per-participant best routes, export
/// eligibility, reach sets, change events — must agree at every step.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "bgp/route_server.hpp"
#include "netbase/rng.hpp"

namespace sdx::bgp {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;
using net::SplitMix64;

/// The reference model: no ranking, no caching, no incremental anything.
class ModelServer {
 public:
  void add_peer(RouteServer::Peer peer) { peers_.push_back(peer); }

  void announce(const Route& route) {
    table_[route.prefix][route.learned_from] = route;
  }

  void withdraw(ParticipantId from, Ipv4Prefix prefix) {
    auto it = table_.find(prefix);
    if (it == table_.end()) return;
    it->second.erase(from);
    if (it->second.empty()) table_.erase(it);
  }

  bool eligible(const Route& r, const RouteServer::Peer& to) const {
    if (r.learned_from == to.id || r.attrs.as_path.contains(to.asn)) {
      return false;
    }
    for (Community c : r.attrs.communities) {
      if (c == kNoExport || c == kNoAdvertise) return false;
      if (to.asn <= 0xFFFF &&
          c == make_community(0, static_cast<std::uint16_t>(to.asn))) {
        return false;
      }
    }
    return true;
  }

  std::optional<Route> best_route(ParticipantId id, Ipv4Prefix prefix) const {
    const RouteServer::Peer* to = nullptr;
    for (const auto& p : peers_) {
      if (p.id == id) to = &p;
    }
    auto it = table_.find(prefix);
    if (to == nullptr || it == table_.end()) return std::nullopt;
    std::optional<Route> best;
    for (const auto& [_, r] : it->second) {
      if (!eligible(r, *to)) continue;
      if (!best || better(r, *best)) best = r;
    }
    return best;
  }

  bool exports_to(ParticipantId via, ParticipantId to,
                  Ipv4Prefix prefix) const {
    const RouteServer::Peer* to_peer = nullptr;
    for (const auto& p : peers_) {
      if (p.id == to) to_peer = &p;
    }
    if (to_peer == nullptr || via == to) return false;
    auto it = table_.find(prefix);
    if (it == table_.end()) return false;
    auto r = it->second.find(via);
    return r != it->second.end() && eligible(r->second, *to_peer);
  }

  const std::vector<RouteServer::Peer>& peers() const { return peers_; }
  const std::map<Ipv4Prefix, std::map<ParticipantId, Route>>& table() const {
    return table_;
  }

 private:
  std::vector<RouteServer::Peer> peers_;
  std::map<Ipv4Prefix, std::map<ParticipantId, Route>> table_;
};

class RouteServerModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouteServerModel, AgreesWithNaiveReferenceUnderFuzz) {
  SplitMix64 rng(GetParam() * 2654435761ull);
  RouteServer real;
  ModelServer model;
  constexpr int kPeers = 6;
  for (int i = 1; i <= kPeers; ++i) {
    RouteServer::Peer p{static_cast<ParticipantId>(i),
                        static_cast<Asn>(65000 + i),
                        Ipv4Address(static_cast<std::uint32_t>(i))};
    real.add_peer(p);
    model.add_peer(p);
  }
  std::vector<Ipv4Prefix> universe;
  for (std::uint32_t i = 0; i < 10; ++i) {
    universe.push_back(Ipv4Prefix(Ipv4Address((10u + i) << 24), 8));
  }

  for (int step = 0; step < 400; ++step) {
    const auto prefix = universe[rng.below(universe.size())];
    const auto who = static_cast<ParticipantId>(1 + rng.below(kPeers));
    if (rng.chance(0.7)) {
      Route r;
      r.prefix = prefix;
      std::vector<Asn> path{static_cast<Asn>(65000 + who)};
      for (std::size_t k = 0, e = rng.below(3); k < e; ++k) {
        // Sometimes include another peer's ASN → loop filtering.
        path.push_back(rng.chance(0.3)
                           ? static_cast<Asn>(65001 + rng.below(kPeers))
                           : static_cast<Asn>(rng.range(100, 60000)));
      }
      r.attrs.as_path = net::AsPath(std::move(path));
      if (rng.chance(0.3)) r.attrs.local_pref = rng.range(90, 110);
      if (rng.chance(0.3)) r.attrs.med = rng.range(0, 3);
      if (rng.chance(0.15)) r.attrs.communities.push_back(kNoExport);
      if (rng.chance(0.15)) {
        r.attrs.communities.push_back(make_community(
            0, static_cast<std::uint16_t>(65001 + rng.below(kPeers))));
      }
      r.attrs.next_hop = Ipv4Address(static_cast<std::uint32_t>(who));
      r.learned_from = who;
      r.peer_router_id = Ipv4Address(static_cast<std::uint32_t>(who));

      // Change events must fire exactly when a best route changes.
      std::map<ParticipantId, std::optional<Route>> before;
      for (const auto& p : model.peers()) {
        before[p.id] = model.best_route(p.id, prefix);
      }
      auto changes = real.announce(r);
      model.announce(r);
      for (const auto& p : model.peers()) {
        auto after = model.best_route(p.id, prefix);
        const bool changed = before[p.id] != after;
        const bool reported =
            std::any_of(changes.begin(), changes.end(),
                        [&p](const RouteServer::BestChange& c) {
                          return c.participant == p.id;
                        });
        ASSERT_EQ(changed, reported)
            << "step " << step << " peer " << p.id << " " << r.to_string();
      }
    } else {
      real.withdraw(who, prefix);
      model.withdraw(who, prefix);
    }

    // Spot-check all observables over the touched prefix.
    for (const auto& p : model.peers()) {
      auto expect = model.best_route(p.id, prefix);
      auto got = real.best_route(p.id, prefix);
      ASSERT_EQ(expect.has_value(), got.has_value())
          << "step " << step << " peer " << p.id;
      if (expect) {
        EXPECT_EQ(expect->attrs, got->attrs);
        EXPECT_EQ(expect->learned_from, got->learned_from);
      }
      for (const auto& q : model.peers()) {
        EXPECT_EQ(model.exports_to(q.id, p.id, prefix),
                  real.exports_to(q.id, p.id, prefix))
            << "step " << step << " via " << q.id << " to " << p.id;
      }
    }
  }

  // Final global agreement: every prefix, every peer, plus reach sets.
  for (auto prefix : universe) {
    for (const auto& p : model.peers()) {
      auto expect = model.best_route(p.id, prefix);
      auto got = real.best_route(p.id, prefix);
      ASSERT_EQ(expect.has_value(), got.has_value());
      if (expect) {
        EXPECT_EQ(expect->learned_from, got->learned_from);
      }
    }
  }
  for (const auto& p : model.peers()) {
    for (const auto& q : model.peers()) {
      if (p.id == q.id) continue;
      auto reach = real.reachable_via(p.id, q.id);
      for (auto prefix : universe) {
        const bool in_reach =
            std::find(reach.begin(), reach.end(), prefix) != reach.end();
        EXPECT_EQ(in_reach, model.exports_to(q.id, p.id, prefix));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteServerModel,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sdx::bgp
