/// Edge cases of the optimized SDX compiler: empty policy sets, inert
/// clauses, contradictory matches, multi-port senders, VNH determinism,
/// compile-option combinations, and flow-table/classifier equivalence
/// under fuzzed traffic.

#include <gtest/gtest.h>

#include "dataplane/flow_table.hpp"
#include "netbase/rng.hpp"
#include "policy/compile.hpp"
#include "sdx/compiler.hpp"
#include "sdx/runtime.hpp"

namespace sdx::core {
namespace {

using net::Field;
using net::Ipv4Prefix;
using net::PacketBuilder;

TEST(CompilerEdge, EmptyExchangeCompiles) {
  SdxRuntime rt;
  rt.add_participant("A", 65001);
  rt.add_participant("B", 65002);
  const auto& compiled = rt.install();
  EXPECT_EQ(compiled.stats.prefix_groups, 0u);
  // MAC-learning rules + catch-all still present.
  EXPECT_GE(compiled.stats.final_rules, 3u);
  EXPECT_TRUE(compiled.fabric.rules().back().match.is_wildcard());
}

TEST(CompilerEdge, PoliciesWithoutRoutesAreInert) {
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
  const auto& compiled = rt.install();  // B exported nothing
  EXPECT_EQ(compiled.stats.prefix_groups, 0u);
  EXPECT_TRUE(
      rt.send(a, PacketBuilder().dst_ip("1.2.3.4").dst_port(80).build())
          .empty());
}

TEST(CompilerEdge, ContradictoryClauseMatchesNothing) {
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"));
  ClauseMatch impossible;
  impossible.dst_port(80).dst_port(443);  // conjunction of two exact values
  rt.set_outbound(a, {OutboundClause{impossible, b}});
  const auto& compiled = rt.install();
  // The clause contributes no rules (but defaults still work).
  auto out =
      rt.send(a, PacketBuilder().dst_ip("100.1.1.1").dst_port(80).build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port, rt.participant(b).ports[0].id);
  EXPECT_TRUE(compiled.fabric.rules().back().match.is_wildcard());
}

TEST(CompilerEdge, MultiPortSenderGetsPerPortClauseRules) {
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001, /*ports=*/2);
  auto b = rt.add_participant("B", 65002);
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"));
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
  rt.install();
  // The policy applies from either of A's ports.
  auto pkt = PacketBuilder().dst_ip("100.1.1.1").dst_port(80).build();
  EXPECT_EQ(rt.send(a, pkt, 0)[0].port, rt.participant(b).ports[0].id);
  EXPECT_EQ(rt.send(a, pkt, 1)[0].port, rt.participant(b).ports[0].id);
}

TEST(CompilerEdge, VnhAssignmentIsDeterministic) {
  auto build = []() {
    auto rt = std::make_unique<SdxRuntime>();
    auto a = rt->add_participant("A", 65001);
    auto b = rt->add_participant("B", 65002);
    auto c = rt->add_participant("C", 65003);
    rt->announce(b, Ipv4Prefix::parse("100.1.0.0/16"),
                 net::AsPath{65002, 7});
    rt->announce(c, Ipv4Prefix::parse("100.2.0.0/16"),
                 net::AsPath{65003, 8});
    rt->set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b},
                         OutboundClause{ClauseMatch{}.dst_port(443), c}});
    rt->install();
    return rt;
  };
  auto rt1 = build();
  auto rt2 = build();
  ASSERT_EQ(rt1->compiled().bindings.size(), rt2->compiled().bindings.size());
  // Same inputs → same groups; binding *values* may permute with group
  // order, but the (prefix → VNH) relation must agree.
  for (auto prefix :
       {Ipv4Prefix::parse("100.1.0.0/16"), Ipv4Prefix::parse("100.2.0.0/16")}) {
    auto b1 = rt1->compiled().binding_for(prefix);
    auto b2 = rt2->compiled().binding_for(prefix);
    ASSERT_EQ(b1.has_value(), b2.has_value());
  }
  // Rule tables must be identical.
  ASSERT_EQ(rt1->compiled().fabric.size(), rt2->compiled().fabric.size());
}

TEST(CompilerEdge, FullOptimizeOptionPreservesBehaviour) {
  CompileOptions plain;
  CompileOptions optimized;
  optimized.full_optimize = true;

  SdxRuntime rt(bgp::DecisionConfig{}, optimized);
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002, 2);
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"));
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
  rt.set_inbound(
      b, {InboundClause{ClauseMatch{}.src(Ipv4Prefix::parse("0.0.0.0/1")),
                        {},
                        1}});
  rt.install();
  auto out = rt.send(
      a, PacketBuilder().src_ip("1.1.1.1").dst_ip("100.1.1.1").dst_port(80)
             .build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port, rt.participant(b).ports[1].id);
  (void)plain;
}

TEST(CompilerEdge, StageTwoThrowsForRemoteParticipants) {
  std::vector<Participant> participants(1);
  participants[0].id = 1;
  participants[0].name = "remote";
  PortMap ports;
  ports.register_participant(1, {});
  bgp::RouteServer server;
  server.add_peer({1, 65001, net::Ipv4Address(1)});
  SdxCompiler compiler(participants, ports, server);
  EXPECT_THROW(compiler.stage2_for(participants[0]), std::logic_error);
}

TEST(CompilerEdge, WithdrawingEverythingEmptiesGroups) {
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"));
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
  rt.install();
  EXPECT_EQ(rt.compiled().stats.prefix_groups, 1u);
  rt.withdraw(b, Ipv4Prefix::parse("100.1.0.0/16"));
  const auto& recompiled = rt.background_recompile();
  EXPECT_EQ(recompiled.stats.prefix_groups, 0u);
  EXPECT_TRUE(
      rt.send(a, PacketBuilder().dst_ip("100.1.1.1").dst_port(80).build())
          .empty());
}

TEST(CompilerEdge, ExportBlockingCommunityConstrainsPoliciesEndToEnd) {
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  auto c = rt.add_participant("C", 65003);
  // B's announcement is tagged "do not export to AS 65001".
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65002},
              {bgp::make_community(0, 65001)});
  rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"),
              net::AsPath{65003, 7, 8});
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
  rt.install();
  // A never sees B's route, so the policy cannot divert to B; traffic
  // follows A's (longer) route via C. C, by contrast, does see B's route.
  auto out = rt.send(
      a, PacketBuilder().dst_ip("100.1.1.1").dst_port(80).build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port, rt.participant(c).ports[0].id);
  auto from_c = rt.send(
      c, PacketBuilder().dst_ip("100.1.1.1").dst_port(80).build());
  ASSERT_EQ(from_c.size(), 1u);
  EXPECT_EQ(from_c[0].port, rt.participant(b).ports[0].id);
}

// ---------------------------------------------------------------------------
// Flow table vs classifier fuzz: installing any compiled classifier into a
// FlowTable must preserve semantics exactly (install order → priorities).

class FlowTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableFuzz, TableMatchesClassifierOnRandomTraffic) {
  net::SplitMix64 rng(GetParam() * 1009);
  for (int trial = 0; trial < 10; ++trial) {
    // Random policy, compiled, installed.
    std::vector<policy::Policy> terms;
    for (int c = 0, e = 1 + static_cast<int>(rng.below(5)); c < e; ++c) {
      policy::Predicate pred = policy::Predicate::truth();
      if (rng.chance(0.7)) {
        pred = pred & policy::Predicate::test(Field::kDstPort,
                                              rng.range(0, 3));
      }
      if (rng.chance(0.5)) {
        pred = pred &
               policy::Predicate::test(
                   Field::kDstIp,
                   Ipv4Prefix(net::Ipv4Address(static_cast<std::uint32_t>(
                                  rng.below(4) << 30)),
                              static_cast<int>(rng.range(1, 3))));
      }
      terms.push_back(policy::match(pred) >>
                      policy::fwd(static_cast<net::PortId>(rng.below(4))));
    }
    auto classifier = policy::compile(policy::Policy::parallel(terms));
    dp::FlowTable table;
    table.install_classifier(classifier, 100, 1);

    for (int i = 0; i < 50; ++i) {
      auto h = PacketBuilder()
                   .dst_ip(net::Ipv4Address(
                       static_cast<std::uint32_t>(rng.below(4) << 30)))
                   .dst_port(rng.range(0, 3))
                   .build();
      auto expect = classifier.evaluate(h);
      auto got = table.process(h);
      ASSERT_EQ(expect, got);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sdx::core
