/// Unit and property tests for the Pyretic-style policy language:
/// predicate algebra, interpreter semantics, and the compiler invariant
/// (DESIGN.md §6.1) that the classifier agrees with the interpreter on
/// every packet.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "netbase/rng.hpp"
#include "policy/compile.hpp"
#include "policy/policy.hpp"

namespace sdx::policy {
namespace {

using net::Field;
using net::Ipv4Address;
using net::Ipv4Prefix;
using net::PacketBuilder;
using net::PacketHeader;
using net::SplitMix64;

PacketHeader web_packet() {
  return PacketBuilder()
      .port(1)
      .dst_ip("74.125.1.1")
      .src_ip("96.25.160.5")
      .proto(net::kProtoTcp)
      .dst_port(80)
      .build();
}

// ---------------------------------------------------------------------------
// Predicate algebra

TEST(Predicate, TestEvaluation) {
  auto p = Predicate::test(Field::kDstPort, 80);
  EXPECT_TRUE(p.eval(web_packet()));
  auto q = Predicate::test(Field::kDstPort, 443);
  EXPECT_FALSE(q.eval(web_packet()));
}

TEST(Predicate, PrefixTest) {
  auto p = Predicate::test(Field::kSrcIp, Ipv4Prefix::parse("96.25.160.0/24"));
  EXPECT_TRUE(p.eval(web_packet()));
  auto q = Predicate::test(Field::kSrcIp, Ipv4Prefix::parse("128.0.0.0/1"));
  EXPECT_FALSE(q.eval(web_packet()));
}

TEST(Predicate, BooleanConnectives) {
  auto web = Predicate::test(Field::kDstPort, 80);
  auto tcp = Predicate::test(Field::kIpProto, net::kProtoTcp);
  EXPECT_TRUE((web & tcp).eval(web_packet()));
  EXPECT_FALSE((web & !tcp).eval(web_packet()));
  EXPECT_TRUE(((!web) | tcp).eval(web_packet()));
  EXPECT_FALSE((!web).eval(web_packet()));
}

TEST(Predicate, SimplificationIdentities) {
  auto t = Predicate::truth();
  auto f = Predicate::falsity();
  auto x = Predicate::test(Field::kDstPort, 80);
  EXPECT_EQ((t & x).to_string(), x.to_string());
  EXPECT_EQ((f & x).kind(), Predicate::Kind::kFalse);
  EXPECT_EQ((f | x).to_string(), x.to_string());
  EXPECT_EQ((t | x).kind(), Predicate::Kind::kTrue);
  EXPECT_EQ((!!x).to_string(), x.to_string());
}

TEST(Predicate, AnyOfMatchesUnionOfPrefixes) {
  auto filt = Predicate::any_of(
      Field::kDstIp,
      {Ipv4Prefix::parse("10.0.0.0/8"), Ipv4Prefix::parse("20.0.0.0/8")});
  EXPECT_TRUE(filt.eval(PacketBuilder().dst_ip("10.1.1.1").build()));
  EXPECT_TRUE(filt.eval(PacketBuilder().dst_ip("20.1.1.1").build()));
  EXPECT_FALSE(filt.eval(PacketBuilder().dst_ip("30.1.1.1").build()));
  EXPECT_EQ(Predicate::any_of(Field::kDstIp, {}).kind(),
            Predicate::Kind::kFalse);
}

// ---------------------------------------------------------------------------
// Interpreter semantics

TEST(PolicyEval, DropAndIdentity) {
  EXPECT_TRUE(drop().eval(web_packet()).empty());
  auto out = identity().eval(web_packet());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], web_packet());
}

TEST(PolicyEval, FwdRelocatesPacket) {
  auto out = fwd(7).eval(web_packet());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), 7u);
}

TEST(PolicyEval, PaperSection31OutboundPolicy) {
  // (match(dstport=80) >> fwd(B)) + (match(dstport=443) >> fwd(C))
  constexpr net::PortId kB = 10, kC = 11;
  Policy pa = (match(Field::kDstPort, 80) >> fwd(kB)) +
              (match(Field::kDstPort, 443) >> fwd(kC));

  auto web = pa.eval(web_packet());
  ASSERT_EQ(web.size(), 1u);
  EXPECT_EQ(web[0].port(), kB);

  auto https = PacketBuilder().dst_port(443).build();
  auto out = pa.eval(https);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), kC);

  // "If neither of the two policies matches, the packet is dropped."
  auto dns = PacketBuilder().dst_port(53).build();
  EXPECT_TRUE(pa.eval(dns).empty());
}

TEST(PolicyEval, PaperSection31LoadBalancerRewrite) {
  // match(dstip=74.125.1.1) >> (match(srcip=96.25.160.0/24) >>
  //   mod(dstip=74.125.224.161)) + ...
  Policy lb =
      match(Field::kDstIp, Ipv4Prefix::host(Ipv4Address::parse("74.125.1.1")))
      >> ((match(Field::kSrcIp, Ipv4Prefix::parse("96.25.160.0/24")) >>
           modify(Field::kDstIp, Ipv4Address::parse("74.125.224.161"))) +
          (match(Field::kSrcIp, Ipv4Prefix::parse("128.125.163.0/24")) >>
           modify(Field::kDstIp, Ipv4Address::parse("74.125.137.139"))));

  auto out = lb.eval(web_packet());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst_ip(), Ipv4Address::parse("74.125.224.161"));

  auto other = PacketBuilder().dst_ip("74.125.1.1").src_ip("1.1.1.1").build();
  EXPECT_TRUE(lb.eval(other).empty());

  auto not_anycast =
      PacketBuilder().dst_ip("74.125.1.2").src_ip("96.25.160.5").build();
  EXPECT_TRUE(lb.eval(not_anycast).empty());
}

TEST(PolicyEval, ParallelUnionsAndDeduplicates) {
  Policy p = fwd(3) + fwd(3) + fwd(4);
  auto out = p.eval(web_packet());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].port(), 3u);
  EXPECT_EQ(out[1].port(), 4u);
}

TEST(PolicyEval, SequentialThreadsThroughMulticast) {
  // Multicast to ports 3 and 4, then rewrite port-3 copies to port 5.
  Policy p = (fwd(3) + fwd(4)) >>
             (if_(Predicate::test(Field::kPort, 3), fwd(5), identity()));
  auto out = p.eval(web_packet());
  std::vector<net::PortId> ports;
  for (const auto& h : out) ports.push_back(h.port());
  std::sort(ports.begin(), ports.end());
  EXPECT_EQ(ports, (std::vector<net::PortId>{4, 5}));
}

TEST(PolicyEval, IfSelectsBranch) {
  Policy p = if_(Predicate::test(Field::kDstPort, 80), fwd(1), fwd(2));
  EXPECT_EQ(p.eval(web_packet())[0].port(), 1u);
  EXPECT_EQ(p.eval(PacketBuilder().dst_port(22).build())[0].port(), 2u);
}

TEST(PolicyEval, AlgebraicUnits) {
  // drop is the unit of +, identity the unit of >>.
  Policy p = fwd(3);
  EXPECT_EQ((p + drop()).to_string(), p.to_string());
  EXPECT_EQ((identity() >> p).to_string(), p.to_string());
  EXPECT_EQ((p >> drop()).kind(), Policy::Kind::kDrop);
}

// ---------------------------------------------------------------------------
// Compiler: unit cases

TEST(Compile, TotalityInvariant) {
  Policy p = (match(Field::kDstPort, 80) >> fwd(2)) + match(Field::kSrcPort, 9);
  Classifier c = compile(p);
  ASSERT_FALSE(c.empty());
  EXPECT_TRUE(c.rules().back().match.is_wildcard());
}

TEST(Compile, PaperOutboundPolicyRuleShape) {
  constexpr net::PortId kB = 10, kC = 11;
  Policy pa = (match(Field::kDstPort, 80) >> fwd(kB)) +
              (match(Field::kDstPort, 443) >> fwd(kC));
  Classifier c = compile(pa);
  // web → B
  auto out = c.evaluate(web_packet());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), kB);
  // everything else → drop
  EXPECT_TRUE(c.evaluate(PacketBuilder().dst_port(53).build()).empty());
}

TEST(Compile, NegationOfPrefixTest) {
  Policy p = match(!Predicate::test(Field::kDstIp,
                                    Ipv4Prefix::parse("10.0.0.0/8"))) >>
             fwd(1);
  Classifier c = compile(p);
  EXPECT_TRUE(c.evaluate(PacketBuilder().dst_ip("10.9.9.9").build()).empty());
  auto out = c.evaluate(PacketBuilder().dst_ip("11.0.0.1").build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), 1u);
}

TEST(Compile, SequentialPullsMatchesBackwardThroughMods) {
  // Rewrite dstport to 80 then match on dstport=80: everything passes.
  Policy p = modify(Field::kDstPort, 80) >> match(Field::kDstPort, 80) >>
             fwd(9);
  Classifier c = compile(p);
  auto out = c.evaluate(PacketBuilder().dst_port(443).build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), 9u);
  EXPECT_EQ(out[0].get(Field::kDstPort), 80u);

  // Rewrite to 81 then match 80: nothing passes.
  Policy q = modify(Field::kDstPort, 81) >> match(Field::kDstPort, 80);
  EXPECT_TRUE(compile(q).evaluate(web_packet()).empty());
}

TEST(Compile, MulticastThroughSequentialComposition) {
  Policy p = (fwd(3) + fwd(4)) >>
             (if_(Predicate::test(Field::kPort, 3), fwd(5), identity()));
  Classifier c = compile(p);
  auto expect = p.eval(web_packet());
  auto got = c.evaluate(web_packet());
  std::sort(expect.begin(), expect.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(expect, got);
}

TEST(Compile, BigPrefixListStaysLinear) {
  // An OR of n prefix tests must compile to O(n) rules, not O(n^2) — this is
  // what keeps BGP reachability filters tractable (paper §4.2 motivation).
  std::vector<Ipv4Prefix> prefixes;
  for (int i = 0; i < 200; ++i) {
    prefixes.push_back(Ipv4Prefix(
        Ipv4Address(static_cast<std::uint32_t>(i) << 12), 24));
  }
  Policy p = match(Predicate::any_of(Field::kDstIp, prefixes)) >> fwd(1);
  Classifier c = compile(p);
  EXPECT_LE(c.size(), prefixes.size() + 2);
}

// ---------------------------------------------------------------------------
// Compiler: the central property test — interpreter vs classifier.

class RandomPolicyGenerator {
 public:
  explicit RandomPolicyGenerator(std::uint64_t seed) : rng_(seed) {}

  Predicate random_predicate(int depth) {
    if (depth <= 0 || rng_.chance(0.45)) {
      switch (rng_.below(5)) {
        case 0:
          return Predicate::test(Field::kDstPort, rng_.range(0, 2));
        case 1:
          return Predicate::test(Field::kPort, rng_.range(0, 2));
        case 2:
          return Predicate::test(
              Field::kDstIp,
              Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(
                             rng_.range(0, 3) << 30)),
                         static_cast<int>(rng_.range(1, 3))));
        case 3:
          return Predicate::truth();
        default:
          return Predicate::falsity();
      }
    }
    switch (rng_.below(3)) {
      case 0:
        return random_predicate(depth - 1) & random_predicate(depth - 1);
      case 1:
        return random_predicate(depth - 1) | random_predicate(depth - 1);
      default:
        return !random_predicate(depth - 1);
    }
  }

  Policy random_policy(int depth) {
    if (depth <= 0 || rng_.chance(0.4)) {
      switch (rng_.below(5)) {
        case 0:
          return drop();
        case 1:
          return identity();
        case 2:
          return fwd(static_cast<net::PortId>(rng_.range(0, 2)));
        case 3:
          return modify(Field::kDstPort, rng_.range(0, 2));
        default:
          return match(random_predicate(1));
      }
    }
    switch (rng_.below(2)) {
      case 0:
        return random_policy(depth - 1) + random_policy(depth - 1);
      default:
        return random_policy(depth - 1) >> random_policy(depth - 1);
    }
  }

  PacketHeader random_packet() {
    return PacketBuilder()
        .port(static_cast<net::PortId>(rng_.range(0, 2)))
        .dst_ip(Ipv4Address(
            static_cast<std::uint32_t>(rng_.range(0, 3) << 30)))
        .dst_port(rng_.range(0, 2))
        .build();
  }

 private:
  SplitMix64 rng_;
};

class CompilerFidelity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompilerFidelity, ClassifierAgreesWithInterpreter) {
  RandomPolicyGenerator gen(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    Policy p = gen.random_policy(3);
    Classifier c = compile(p);
    ASSERT_TRUE(!c.empty() && c.rules().back().match.is_wildcard())
        << "classifier must be total: " << p.to_string();
    for (int i = 0; i < 25; ++i) {
      PacketHeader h = gen.random_packet();
      auto expect = p.eval(h);
      auto got = c.evaluate(h);
      std::sort(expect.begin(), expect.end());
      std::sort(got.begin(), got.end());
      ASSERT_EQ(expect, got)
          << "policy: " << p.to_string() << "\npacket: " << h.to_string()
          << "\nclassifier:\n"
          << c.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerFidelity,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

// Full-subsumption optimization must also preserve semantics.
class OptimizerFidelity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizerFidelity, OptimizePreservesSemantics) {
  RandomPolicyGenerator gen(GetParam() * 7919);
  for (int trial = 0; trial < 20; ++trial) {
    Policy p = gen.random_policy(3);
    Classifier c = compile(p);
    Classifier opt = c;
    opt.optimize(/*full=*/true);
    EXPECT_LE(opt.size(), c.size());
    for (int i = 0; i < 25; ++i) {
      PacketHeader h = gen.random_packet();
      auto a = c.evaluate(h);
      auto b = opt.evaluate(h);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << p.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerFidelity,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sdx::policy
