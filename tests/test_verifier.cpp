/// Tests for the static rule-table auditor: compiled workloads must pass
/// clean, and injected corruptions of each invariant must be flagged.

#include <gtest/gtest.h>

#include "ixp/ixp_generator.hpp"
#include "sdx/runtime.hpp"
#include "sdx/verifier.hpp"

namespace sdx::core {
namespace {

using net::Field;
using net::Ipv4Prefix;

class VerifierFixture : public ::testing::Test {
 protected:
  VerifierFixture() {
    a = rt.add_participant("A", 65001);
    b = rt.add_participant("B", 65002, 2);
    c = rt.add_participant("C", 65003);
    rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b},
                        OutboundClause{ClauseMatch{}.dst_port(443), c}});
    rt.set_inbound(
        b, {InboundClause{ClauseMatch{}.src(Ipv4Prefix::parse("0.0.0.0/1")),
                          {},
                          0}});
    rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"),
                net::AsPath{65002, 10});
    rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003, 9});
    rt.announce(c, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65003, 9});
    rt.install();
  }
  SdxRuntime rt;
  bgp::ParticipantId a = 0, b = 0, c = 0;
};

TEST_F(VerifierFixture, CompiledScenarioPassesClean) {
  auto report = audit(rt.compiled(), rt.participants(), rt.ports(),
                      rt.route_server());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.rules_checked, rt.compiled().fabric.size());
}

TEST_F(VerifierFixture, FlagsMissingCatchAll) {
  CompiledSdx broken = rt.compiled();
  broken.fabric.rules().pop_back();
  auto report =
      audit(broken, rt.participants(), rt.ports(), rt.route_server());
  EXPECT_FALSE(report.ok());
}

TEST_F(VerifierFixture, FlagsVirtualPortOutput) {
  CompiledSdx broken = rt.compiled();
  policy::Rule bad;
  bad.match = net::FlowMatch::on(Field::kDstPort, 9999);
  bad.actions = {policy::ActionSeq::set(Field::kPort, rt.ports().vport(b))};
  broken.fabric.rules().insert(broken.fabric.rules().begin(), bad);
  auto report =
      audit(broken, rt.participants(), rt.ports(), rt.route_server());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].what.find("virtual port"),
            std::string::npos);
}

TEST_F(VerifierFixture, FlagsVmacLeakToRouter) {
  CompiledSdx broken = rt.compiled();
  ASSERT_FALSE(broken.bindings.empty());
  policy::Rule bad;
  // Tagged traffic forwarded to B's first port without the MAC rewrite:
  // B's router would drop it.
  bad.match = net::FlowMatch::on(Field::kDstMac,
                                 broken.bindings[0].vmac.bits());
  bad.actions = {policy::ActionSeq::set(
      Field::kPort, rt.participant(b).ports[0].id)};
  broken.fabric.rules().insert(broken.fabric.rules().begin(), bad);
  auto report =
      audit(broken, rt.participants(), rt.ports(), rt.route_server());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].what.find("router MAC"), std::string::npos);
}

TEST_F(VerifierFixture, FlagsBgpInconsistentForwarding) {
  CompiledSdx broken = rt.compiled();
  // Find the group for 100.2.0.0/16, which only C exported. Forwarding it
  // to B violates "only along BGP-advertised paths".
  auto it = broken.fecs.group_of.find(Ipv4Prefix::parse("100.2.0.0/16"));
  ASSERT_NE(it, broken.fecs.group_of.end());
  const auto vmac = broken.bindings[it->second].vmac;
  policy::Rule bad;
  bad.match = net::FlowMatch::on(Field::kPort, rt.participant(a).ports[0].id);
  bad.match.with(Field::kDstMac, vmac.bits());
  policy::ActionSeq act = policy::ActionSeq::set(
      Field::kDstMac, rt.participant(b).ports[0].router_mac.bits());
  act.then_set(Field::kPort, rt.participant(b).ports[0].id);
  bad.actions = {act};
  broken.fabric.rules().insert(broken.fabric.rules().begin(), bad);
  auto report =
      audit(broken, rt.participants(), rt.ports(), rt.route_server());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].what.find("without a matching BGP export"),
            std::string::npos);
}

TEST_F(VerifierFixture, FlagsUnknownOutputPort) {
  CompiledSdx broken = rt.compiled();
  policy::Rule bad;
  bad.match = net::FlowMatch::on(Field::kDstPort, 1234);
  bad.actions = {policy::ActionSeq::set(Field::kPort, 777)};
  broken.fabric.rules().insert(broken.fabric.rules().begin(), bad);
  auto report =
      audit(broken, rt.participants(), rt.ports(), rt.route_server());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].what.find("unowned port"),
            std::string::npos);
}

TEST(VerifierWorkload, GeneratedWorkloadsAuditClean) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    ixp::GeneratorConfig cfg;
    cfg.participants = 80;
    cfg.prefixes = 2000;
    cfg.seed = seed;
    auto ixp = ixp::generate_ixp(cfg);
    ixp::PolicySynthConfig pcfg;
    pcfg.seed = seed;
    pcfg.policy_prefixes = ixp::sample_policy_prefixes(ixp, 1500, seed);
    ixp::synthesize_policies(ixp, pcfg);
    SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server);
    VnhAllocator vnh;
    auto compiled = compiler.compile(vnh);
    auto report = audit(compiled, ixp.participants, ixp.ports, ixp.server);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.to_string();
  }
}

}  // namespace
}  // namespace sdx::core
