/// Tests for the traffic monitor: windowing, aggregation granularity,
/// heavy-hitter ordering, and the reactive-mitigation loop end to end.

#include <gtest/gtest.h>

#include "sdx/monitor.hpp"
#include "sdx/runtime.hpp"

namespace sdx::core {
namespace {

using net::Ipv4Prefix;
using net::PacketBuilder;

net::PacketHeader from(const char* src) {
  return PacketBuilder().src_ip(src).dst_ip("203.0.113.1").build();
}

TEST(TrafficMonitor, AggregatesBySourceBlockAndVictim) {
  TrafficMonitor mon(/*window_s=*/10.0);
  for (int i = 0; i < 5; ++i) mon.observe(0.0, from("198.18.7.9"), 1);
  for (int i = 0; i < 3; ++i) mon.observe(0.0, from("198.18.7.200"), 1);
  mon.observe(0.0, from("198.18.8.9"), 1);   // different /24
  mon.observe(0.0, from("198.18.7.9"), 2);   // different victim
  auto hh = mon.heavy_hitters(0.0, 8);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_EQ(hh[0].source_block, Ipv4Prefix::parse("198.18.7.0/24"));
  EXPECT_EQ(hh[0].victim, 1u);
  EXPECT_EQ(hh[0].packets, 8u);
  EXPECT_EQ(mon.observed_total(), 10u);
}

TEST(TrafficMonitor, SlidingWindowForgets) {
  TrafficMonitor mon(/*window_s=*/5.0);
  for (int i = 0; i < 10; ++i) mon.observe(0.0, from("198.18.7.9"), 1);
  EXPECT_EQ(mon.heavy_hitters(1.0, 10).size(), 1u);
  // 6 seconds later the samples have aged out.
  EXPECT_TRUE(mon.heavy_hitters(6.1, 1).empty());
  // New traffic starts a fresh count.
  mon.observe(7.0, from("198.18.7.9"), 1);
  auto hh = mon.heavy_hitters(7.0, 1);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_EQ(hh[0].packets, 1u);
}

TEST(TrafficMonitor, HeaviestFirstOrdering) {
  TrafficMonitor mon(10.0);
  for (int i = 0; i < 3; ++i) mon.observe(0, from("10.0.0.1"), 1);
  for (int i = 0; i < 7; ++i) mon.observe(0, from("20.0.0.1"), 1);
  for (int i = 0; i < 5; ++i) mon.observe(0, from("30.0.0.1"), 1);
  auto hh = mon.heavy_hitters(0, 3);
  ASSERT_EQ(hh.size(), 3u);
  EXPECT_EQ(hh[0].packets, 7u);
  EXPECT_EQ(hh[1].packets, 5u);
  EXPECT_EQ(hh[2].packets, 3u);
}

TEST(TrafficMonitor, TieOrderingIsDeterministic) {
  // Equal-weight hitters must come back in (block, victim) order no matter
  // what order the hash map iterated them in — reactive applications key
  // decisions off the list head, so ties cannot depend on the standard
  // library. Interleave the observations to scramble insertion order.
  TrafficMonitor mon(10.0);
  for (int i = 0; i < 4; ++i) {
    mon.observe(0.0, from("20.0.0.1"), 1);
    mon.observe(0.0, from("10.0.0.1"), 2);
    mon.observe(0.0, from("10.0.0.1"), 1);
    mon.observe(0.0, from("30.0.0.1"), 1);
  }
  auto hh = mon.heavy_hitters(0.0, 4);
  ASSERT_EQ(hh.size(), 4u);
  EXPECT_EQ(hh[0].source_block, Ipv4Prefix::parse("10.0.0.0/24"));
  EXPECT_EQ(hh[0].victim, 1u);
  EXPECT_EQ(hh[1].source_block, Ipv4Prefix::parse("10.0.0.0/24"));
  EXPECT_EQ(hh[1].victim, 2u);
  EXPECT_EQ(hh[2].source_block, Ipv4Prefix::parse("20.0.0.0/24"));
  EXPECT_EQ(hh[3].source_block, Ipv4Prefix::parse("30.0.0.0/24"));
}

TEST(TrafficMonitor, TieOrderingSurvivesWindowPruning) {
  // Pruning can demote a leader into a tie; the demoted key must then slot
  // into the deterministic order, not keep its old position.
  TrafficMonitor mon(/*window_s=*/5.0);
  mon.observe(0.0, from("30.0.0.1"), 1);
  mon.observe(0.0, from("30.0.0.1"), 1);
  for (const char* src : {"10.0.0.1", "20.0.0.1", "30.0.0.1"}) {
    for (int i = 0; i < 3; ++i) mon.observe(3.0, from(src), 1);
  }
  // Inside the window 30/24 leads with 5.
  auto before = mon.heavy_hitters(4.0, 1);
  ASSERT_EQ(before.size(), 3u);
  EXPECT_EQ(before[0].source_block, Ipv4Prefix::parse("30.0.0.0/24"));
  EXPECT_EQ(before[0].packets, 5u);
  EXPECT_EQ(before[1].source_block, Ipv4Prefix::parse("10.0.0.0/24"));
  EXPECT_EQ(before[2].source_block, Ipv4Prefix::parse("20.0.0.0/24"));
  // At t=6 the two t=0 samples age out: a three-way tie at 3 packets,
  // reported in block order.
  auto after = mon.heavy_hitters(6.0, 1);
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[0].source_block, Ipv4Prefix::parse("10.0.0.0/24"));
  EXPECT_EQ(after[1].source_block, Ipv4Prefix::parse("20.0.0.0/24"));
  EXPECT_EQ(after[2].source_block, Ipv4Prefix::parse("30.0.0.0/24"));
  for (const auto& hh : after) EXPECT_EQ(hh.packets, 3u);
}

TEST(TrafficMonitor, ConfigurableBlockLength) {
  TrafficMonitor mon(10.0, /*block_len=*/16);
  mon.observe(0, from("198.18.7.9"), 1);
  mon.observe(0, from("198.18.200.9"), 1);  // same /16, different /24
  auto hh = mon.heavy_hitters(0, 2);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_EQ(hh[0].source_block, Ipv4Prefix::parse("198.18.0.0/16"));
}

TEST(TrafficMonitor, ReactiveMitigationLoopEndToEnd) {
  // The ddos_scrubber example's control loop, condensed: detection leads
  // to a surgical clause, attack traffic moves, legitimate traffic stays.
  SdxRuntime rt;
  auto transit = rt.add_participant("transit", 65001);
  auto victim = rt.add_participant("victim", 65002);
  auto scrubber = rt.add_participant("scrubber", 65003);
  const auto victim_net = Ipv4Prefix::parse("203.0.113.0/24");
  rt.announce(victim, victim_net, net::AsPath{65002});
  rt.announce(scrubber, victim_net, net::AsPath{65003, 65002});
  rt.install();

  TrafficMonitor mon(10.0);
  auto attack = PacketBuilder()
                    .src_ip("198.18.7.77")
                    .dst_ip("203.0.113.10")
                    .proto(net::kProtoUdp)
                    .dst_port(53)
                    .build();
  auto legit = PacketBuilder()
                   .src_ip("96.25.160.5")
                   .dst_ip("203.0.113.10")
                   .proto(net::kProtoTcp)
                   .dst_port(443)
                   .build();
  for (int i = 0; i < 50; ++i) {
    auto d = rt.send(transit, attack);
    ASSERT_FALSE(d.empty());
    mon.observe(0.0, attack, rt.ports().phys_owner(d[0].port));
  }
  auto hh = mon.heavy_hitters(0.0, 40);
  ASSERT_EQ(hh.size(), 1u);

  OutboundClause steer;
  steer.match.src(hh[0].source_block);
  steer.match.dst(victim_net);
  steer.to = scrubber;
  rt.set_outbound(transit, {steer});
  rt.install();

  EXPECT_EQ(rt.send(transit, attack)[0].port,
            rt.participant(scrubber).ports[0].id);
  EXPECT_EQ(rt.send(transit, legit)[0].port,
            rt.participant(victim).ports[0].id);
  // The scrubber forwards cleaned traffic onward to the victim.
  EXPECT_EQ(rt.send(scrubber, attack)[0].port,
            rt.participant(victim).ports[0].id);
}

}  // namespace
}  // namespace sdx::core
