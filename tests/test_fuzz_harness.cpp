/// In-process replay of the fuzz targets: every committed corpus input and
/// a budget of freshly mutated variants run through the same entry points
/// the libFuzzer/standalone binaries call, so the plain unit build (no
/// clang, no -DSDX_FUZZ) still exercises each target's invariants on every
/// CI run. An SDX_FUZZ_REQUIRE violation aborts, which GTest reports as a
/// crashed test.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/diff_oracle.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/mutator.hpp"

namespace sdx::fuzz {
namespace {

namespace fs = std::filesystem;

Bytes read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string s{std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>()};
  return Bytes(s.begin(), s.end());
}

std::vector<Bytes> committed_corpus(std::string_view target) {
  const fs::path dir =
      fs::path(SDX_SOURCE_DIR) / "fuzz" / "corpus" / std::string(target);
  std::vector<Bytes> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".bin") {
      out.push_back(read_file(entry.path()));
    }
  }
  return out;
}

TEST(FuzzHarness, RegistryCoversEveryTarget) {
  const std::vector<std::string_view> expected = {
      "wire", "mrt", "codec", "wal", "policy", "diff_oracle", "framer"};
  ASSERT_EQ(fuzz_targets().size(), expected.size());
  for (const auto name : expected) {
    EXPECT_NE(find_fuzz_entry(name), nullptr) << name;
  }
  EXPECT_EQ(find_fuzz_entry("nonsense"), nullptr);
}

TEST(FuzzHarness, SeedCorporaAreDeterministic) {
  for (const auto& target : fuzz_targets()) {
    EXPECT_EQ(seed_corpus(target.name), seed_corpus(target.name))
        << target.name;
  }
  EXPECT_THROW(seed_corpus("nonsense"), std::invalid_argument);
}

TEST(FuzzHarness, CommittedCorporaMatchTheGenerator) {
  // fuzz_make_corpus must have been re-run whenever the generators change,
  // or the committed seeds silently rot.
  for (const auto& target : fuzz_targets()) {
    auto generated = seed_corpus(target.name);
    auto committed = committed_corpus(target.name);
    ASSERT_EQ(committed.size(), generated.size())
        << target.name << ": rerun fuzz_make_corpus and commit the result";
    std::sort(generated.begin(), generated.end());
    std::sort(committed.begin(), committed.end());
    EXPECT_EQ(committed, generated)
        << target.name << ": rerun fuzz_make_corpus and commit the result";
  }
}

/// Replays each target's committed corpus plus mutated variants through
/// its entry. Mutation budgets are per-target: the diff_oracle entry
/// stands up several runtimes per input, so it gets a smaller batch.
class FuzzHarnessReplay
    : public ::testing::TestWithParam<std::string_view> {};

TEST_P(FuzzHarnessReplay, CorpusAndMutantsRunClean) {
  const auto name = GetParam();
  const auto entry = find_fuzz_entry(name);
  ASSERT_NE(entry, nullptr);

  auto corpus = seed_corpus(name);
  for (const auto& extra : committed_corpus(name)) corpus.push_back(extra);
  ASSERT_FALSE(corpus.empty());

  for (const auto& input : corpus) {
    EXPECT_EQ(entry(input.data(), input.size()), 0);
  }

  const int mutants = name == "diff_oracle" ? 5 : 200;
  ByteMutator mutator(0x5d2c0ffee
                      + static_cast<std::uint64_t>(name.size()));
  for (int i = 0; i < mutants; ++i) {
    Bytes bytes = corpus[mutator.rng().below(corpus.size())];
    mutator.mutate(bytes, static_cast<int>(1 + mutator.rng().below(4)));
    EXPECT_EQ(entry(bytes.data(), bytes.size()), 0);
  }

  // Degenerate inputs every entry must tolerate.
  EXPECT_EQ(entry(nullptr, 0), 0);
  const Bytes one{0xff};
  EXPECT_EQ(entry(one.data(), one.size()), 0);
}

INSTANTIATE_TEST_SUITE_P(Targets, FuzzHarnessReplay,
                         ::testing::Values("wire", "mrt", "codec", "wal",
                                           "policy", "diff_oracle",
                                           "framer"));

TEST(FuzzHarness, TraceCodecIsTotalAndRoundTrips) {
  ByteMutator mutator(77);
  for (int i = 0; i < 500; ++i) {
    const Bytes bytes = mutator.random_bytes(96);
    const Trace t = decode_trace(bytes);
    EXPECT_GE(t.participants, 2);
    EXPECT_LE(t.participants, 5);
    EXPECT_GE(t.prefixes, 2);
    EXPECT_LE(t.prefixes, 16);
    EXPECT_LE(t.ops.size(), kMaxTraceOps);
    // encode ∘ decode is the identity on the decoded form.
    EXPECT_EQ(decode_trace(encode_trace(t)), t);
  }
}

}  // namespace
}  // namespace sdx::fuzz
