/// Burst batching and asynchronous background recompilation (the §4.3.2
/// pipeline made concurrent): flush triggers and equivalence with the
/// inline fast path, composition-sharing across a batch (counter-
/// verified), the raced-delta swap protocol, policy-staleness restarts,
/// the bounded update log, and the thread-pool task API underneath.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "netbase/parallel.hpp"
#include "sdx/incremental.hpp"
#include "sdx/runtime.hpp"

namespace sdx::core {
namespace {

using net::Ipv4Prefix;
using net::PacketBuilder;

class AsyncUpdatesFixture : public ::testing::Test {
 protected:
  AsyncUpdatesFixture() { build(rt); }

  /// The fixture topology, reproducible into a second runtime for golden
  /// comparisons: A applies an outbound policy toward B and C, B and C
  /// announce.
  void build(SdxRuntime& r) {
    auto pa = r.add_participant("A", 65001);
    auto pb = r.add_participant("B", 65002);
    auto pc = r.add_participant("C", 65003);
    r.set_outbound(pa, {OutboundClause{ClauseMatch{}.dst_port(80), pb},
                        OutboundClause{ClauseMatch{}.dst_port(443), pc}});
    r.announce(pb, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65002, 7});
    r.announce(pb, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65002, 7});
    r.announce(pc, Ipv4Prefix::parse("100.9.0.0/16"), net::AsPath{65003});
    r.install();
  }

  std::uint64_t counter(SdxRuntime& r, const char* name) {
    return r.telemetry().metrics.counter(name).value();
  }

  net::PortId egress(SdxRuntime& r, ParticipantId from, const char* dst_ip,
                     std::uint16_t dst_port) {
    auto out = r.send(
        from, PacketBuilder().dst_ip(dst_ip).dst_port(dst_port).build());
    return out.size() == 1 ? out[0].port : net::PortId{0};
  }

  SdxRuntime rt;
  ParticipantId a = 1, b = 2, c = 3;
};

// --- burst batching ---------------------------------------------------------

TEST_F(AsyncUpdatesFixture, FlushIsIdleWithoutDirtyPrefixes) {
  rt.enable_batching();
  EXPECT_EQ(rt.pending_updates(), 0u);
  EXPECT_EQ(rt.flush(), 0u);
}

TEST_F(AsyncUpdatesFixture, BatchedFlushMatchesInlineForwarding) {
  SdxRuntime inline_rt;
  build(inline_rt);

  // The same burst: C takes over both of B's prefixes.
  const auto p1 = Ipv4Prefix::parse("100.1.0.0/16");
  const auto p2 = Ipv4Prefix::parse("100.2.0.0/16");
  inline_rt.announce(c, p1, net::AsPath{65003});
  inline_rt.announce(c, p2, net::AsPath{65003});

  rt.enable_batching({0, 0});  // explicit flushes only
  rt.announce(c, p1, net::AsPath{65003});
  rt.announce(c, p2, net::AsPath{65003});
  EXPECT_EQ(rt.pending_updates(), 2u);
  EXPECT_EQ(rt.flush(), 2u);
  EXPECT_EQ(rt.pending_updates(), 0u);

  // Policy traffic and default traffic land identically in both modes.
  for (const char* ip : {"100.1.1.1", "100.2.2.2", "100.9.9.9"}) {
    for (std::uint16_t port : {std::uint16_t{80}, std::uint16_t{443},
                               std::uint16_t{53}}) {
      EXPECT_EQ(egress(rt, a, ip, port), egress(inline_rt, a, ip, port))
          << ip << ":" << port;
    }
  }
}

TEST_F(AsyncUpdatesFixture, BatchSharesCompositionsAcrossEqualSignatures) {
  const auto p1 = Ipv4Prefix::parse("100.1.0.0/16");
  const auto p2 = Ipv4Prefix::parse("100.2.0.0/16");

  // Inline baseline: each update is its own restricted compilation.
  const auto inline_before = counter(rt, "sdx_fast_path_compositions_total");
  rt.announce(b, p1, net::AsPath{65002, 7});
  rt.announce(b, p2, net::AsPath{65002, 7});
  const auto inline_cost =
      counter(rt, "sdx_fast_path_compositions_total") - inline_before;
  ASSERT_GT(inline_cost, 0u);

  // The identical burst, batched. p1 and p2 share their restricted
  // signature (same clause hits, same default vector), so the mini-FEC
  // folds them into one group: one composition walk, not two.
  rt.background_recompile();
  rt.enable_batching({0, 0});
  const auto batched_before = counter(rt, "sdx_fast_path_compositions_total");
  rt.announce(b, p1, net::AsPath{65002, 7});
  rt.announce(b, p2, net::AsPath{65002, 7});
  EXPECT_EQ(rt.flush(), 2u);
  const auto batched_cost =
      counter(rt, "sdx_fast_path_compositions_total") - batched_before;
  EXPECT_LT(batched_cost, inline_cost);
  EXPECT_EQ(batched_cost * 2, inline_cost);  // exactly one shared walk
  EXPECT_EQ(counter(rt, "sdx_fast_path_batches_total"), 1u);
  EXPECT_EQ(counter(rt, "sdx_fast_path_batched_updates_total"), 2u);

  // Shared signature ⇒ shared binding.
  ASSERT_TRUE(rt.current_binding(p1).has_value());
  EXPECT_EQ(rt.current_binding(p1)->vmac, rt.current_binding(p2)->vmac);
}

TEST_F(AsyncUpdatesFixture, SizeTriggeredAutoFlush) {
  rt.enable_batching({2, 0});
  rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
  EXPECT_EQ(rt.pending_updates(), 1u);
  // A duplicate of a dirty prefix does not grow the batch.
  rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
  EXPECT_EQ(rt.pending_updates(), 1u);
  rt.announce(c, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65003});
  EXPECT_EQ(rt.pending_updates(), 0u);  // hit max_pending → flushed
  EXPECT_EQ(counter(rt, "sdx_fast_path_batches_total"), 1u);
  EXPECT_EQ(egress(rt, a, "100.1.1.1", 53), rt.participant(c).ports[0].id);
}

TEST_F(AsyncUpdatesFixture, ClockTriggeredFlush) {
  rt.enable_batching({0, 1.0});
  rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
  rt.advance_clock(0.5);
  EXPECT_EQ(rt.pending_updates(), 1u);
  rt.advance_clock(0.6);  // 1.1s total > max_delay_seconds
  EXPECT_EQ(rt.pending_updates(), 0u);
  EXPECT_EQ(counter(rt, "sdx_fast_path_batches_total"), 1u);
}

TEST_F(AsyncUpdatesFixture, DisableBatchingFlushesAndReturnsInline) {
  rt.enable_batching({0, 0});
  rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
  EXPECT_EQ(rt.pending_updates(), 1u);
  rt.disable_batching();
  EXPECT_FALSE(rt.batching());
  EXPECT_EQ(rt.pending_updates(), 0u);
  // Subsequent updates run inline again.
  rt.announce(c, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65003});
  EXPECT_EQ(rt.pending_updates(), 0u);
  EXPECT_EQ(egress(rt, a, "100.2.1.1", 53), rt.participant(c).ports[0].id);
}

TEST_F(AsyncUpdatesFixture, SessionDownPurgesPendingBatch) {
  rt.enable_batching({0, 0});
  const auto pb1 = Ipv4Prefix::parse("100.1.0.0/16");
  rt.announce(b, pb1, net::AsPath{65002});           // pending, from B
  rt.announce(c, Ipv4Prefix::parse("100.9.0.0/16"),  // pending, from C
              net::AsPath{65003});
  ASSERT_EQ(rt.pending_updates(), 2u);

  // B's session drops while its update is still queued: the withdrawn
  // prefixes must leave the dirty set and shed their fast-path bindings —
  // no later flush may resurrect state for routes that no longer exist.
  rt.session_down(b);
  EXPECT_EQ(rt.pending_updates(), 0u);  // purge + rebuild absorbed the rest
  EXPECT_EQ(rt.flush(), 0u);
  EXPECT_EQ(rt.fabric().sdx_switch().table().size(),
            rt.compiled().fabric.size());  // no fast rules survived
  // B's prefixes are gone; C's announcement is live via the rebuild.
  EXPECT_EQ(egress(rt, a, "100.2.1.1", 53), net::PortId{0});
  EXPECT_EQ(egress(rt, a, "100.9.1.1", 53), rt.participant(c).ports[0].id);
}

// --- asynchronous optimal recompilation -------------------------------------

TEST_F(AsyncUpdatesFixture, AsyncRecompileByteIdenticalToSync) {
  SdxRuntime sync_rt;
  build(sync_rt);

  // Same post-install churn on both, then sync vs async recompile.
  for (SdxRuntime* r : {&rt, &sync_rt}) {
    r->announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
    r->withdraw(c, Ipv4Prefix::parse("100.1.0.0/16"));
    r->announce(c, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65003});
  }
  sync_rt.set_compile_threads(1);
  sync_rt.background_recompile();

  rt.set_compile_threads(8);
  ASSERT_TRUE(rt.start_background_recompile());
  EXPECT_FALSE(rt.start_background_recompile());  // one job at a time
  rt.wait_background_recompile();
  EXPECT_FALSE(rt.recompile_in_flight());

  // Byte-identical across sync-vs-async *and* threads 1-vs-8.
  EXPECT_EQ(rt.compiled().fingerprint(), sync_rt.compiled().fingerprint());
  EXPECT_EQ(rt.fabric().sdx_switch().table().size(),
            sync_rt.fabric().sdx_switch().table().size());
  EXPECT_EQ(counter(rt, "sdx_recompile_async_total"), 1u);
  EXPECT_EQ(counter(rt, "sdx_recompile_stale_total"), 0u);
}

TEST_F(AsyncUpdatesFixture, StartBeforeInstallThrows) {
  SdxRuntime fresh;
  EXPECT_THROW(fresh.start_background_recompile(), std::logic_error);
}

TEST_F(AsyncUpdatesFixture, SwapReappliesRacedDeltas) {
  const auto p1 = Ipv4Prefix::parse("100.1.0.0/16");
  ASSERT_TRUE(rt.start_background_recompile());
  // This update races the in-flight job: its RIB change postdates the
  // snapshot, so the swapped-in table alone would misroute it.
  rt.announce(c, p1, net::AsPath{65003});
  rt.wait_background_recompile();
  EXPECT_FALSE(rt.recompile_in_flight());
  // The raced delta was re-applied through a batched fast pass on top of
  // the new base: default traffic follows C's better route.
  EXPECT_EQ(egress(rt, a, "100.1.1.1", 53), rt.participant(c).ports[0].id);
  // And it re-applied as *fast-path* state (rules above the base table).
  EXPECT_GT(rt.fabric().sdx_switch().table().size(),
            rt.compiled().fabric.size());
  EXPECT_EQ(counter(rt, "sdx_recompile_stale_total"), 0u);
}

TEST_F(AsyncUpdatesFixture, PolicyChangeMidFlightDiscardsAndRestarts) {
  ASSERT_TRUE(rt.start_background_recompile());
  // Policies change while the job flies: its snapshot answers yesterday's
  // question, so the result must be discarded and the compile restarted.
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(22), c}});
  rt.wait_background_recompile();
  EXPECT_FALSE(rt.recompile_in_flight());
  EXPECT_EQ(counter(rt, "sdx_recompile_stale_total"), 1u);
  EXPECT_EQ(counter(rt, "sdx_recompile_async_total"), 2u);  // the restart

  // The final state reflects the *new* policy, bit-for-bit.
  SdxRuntime golden;
  build(golden);
  golden.set_outbound(1, {OutboundClause{ClauseMatch{}.dst_port(22), 3}});
  golden.background_recompile();
  EXPECT_EQ(rt.compiled().fingerprint(), golden.compiled().fingerprint());
}

TEST_F(AsyncUpdatesFixture, SynchronousRecompileSupersedesAsyncJob) {
  ASSERT_TRUE(rt.start_background_recompile());
  rt.background_recompile();  // outruns the job
  const auto fp = rt.compiled().fingerprint();
  rt.wait_background_recompile();  // job completes stale, is discarded
  EXPECT_EQ(counter(rt, "sdx_recompile_stale_total"), 1u);
  EXPECT_EQ(rt.compiled().fingerprint(), fp);  // sync result stands
}

TEST_F(AsyncUpdatesFixture, BatchedUpdatesUnderInFlightJobAreReapplied) {
  rt.enable_batching({0, 0});
  const auto p1 = Ipv4Prefix::parse("100.1.0.0/16");
  ASSERT_TRUE(rt.start_background_recompile());
  rt.announce(c, p1, net::AsPath{65003});
  EXPECT_EQ(rt.flush(), 1u);  // flushed onto the *old* base, and raced
  rt.wait_background_recompile();
  // Still correct after the swap replaced everything under the flush.
  EXPECT_EQ(egress(rt, a, "100.1.1.1", 53), rt.participant(c).ports[0].id);
}

// --- bounded update log -----------------------------------------------------

TEST_F(AsyncUpdatesFixture, UpdateLogIsBoundedRing) {
  rt.set_update_log_capacity(3);
  const auto p1 = Ipv4Prefix::parse("100.1.0.0/16");
  for (int i = 0; i < 5; ++i) {
    rt.announce(c, p1, net::AsPath{65003, static_cast<net::Asn>(100 + i)});
  }
  ASSERT_EQ(rt.update_log().size(), 3u);  // oldest two dropped
  EXPECT_EQ(rt.update_log().front().prefix, p1);

  // Shrinking the cap trims immediately; 0 disables logging.
  rt.set_update_log_capacity(1);
  EXPECT_EQ(rt.update_log().size(), 1u);
  rt.set_update_log_capacity(0);
  rt.announce(c, p1, net::AsPath{65003});
  EXPECT_TRUE(rt.update_log().empty());
}

TEST_F(AsyncUpdatesFixture, ZeroCapacityLogNeverAdmitsAnEntry) {
  // Regression: capacity 0 used to admit each report before the bound was
  // enforced. The ring must never hold an entry — not transiently, not
  // through the batched path — when logging is disabled.
  rt.set_update_log_capacity(0);
  const auto p1 = Ipv4Prefix::parse("100.1.0.0/16");
  for (int i = 0; i < 3; ++i) {
    rt.announce(c, p1, net::AsPath{65003, static_cast<net::Asn>(100 + i)});
    EXPECT_TRUE(rt.update_log().empty());
  }
  rt.enable_batching({0, 0});
  rt.announce(c, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65003});
  EXPECT_EQ(rt.flush(), 1u);
  EXPECT_TRUE(rt.update_log().empty());
  rt.disable_batching();

  // Re-enabling restores logging from the next update on.
  rt.set_update_log_capacity(2);
  rt.announce(c, p1, net::AsPath{65003});
  EXPECT_EQ(rt.update_log().size(), 1u);
}

TEST_F(AsyncUpdatesFixture, RecompileClearsSupersededLogEntries) {
  rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
  ASSERT_FALSE(rt.update_log().empty());
  rt.background_recompile();
  EXPECT_TRUE(rt.update_log().empty());

  rt.announce(c, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65003});
  ASSERT_FALSE(rt.update_log().empty());
  ASSERT_TRUE(rt.start_background_recompile());
  rt.wait_background_recompile();
  EXPECT_TRUE(rt.update_log().empty());
}

// --- thread-pool task submission --------------------------------------------

TEST(ThreadPoolSubmit, RunsTaskAndCompletesFuture) {
  net::ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto f = pool.submit([&] { ran.fetch_add(1); });
  f.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolSubmit, RunsOffTheCallingThread) {
  net::ThreadPool pool(2);
  std::thread::id worker_id;
  pool.submit([&] { worker_id = std::this_thread::get_id(); }).wait();
  EXPECT_NE(worker_id, std::this_thread::get_id());
}

TEST(ThreadPoolSubmit, SerialPoolRunsInline) {
  net::ThreadPool pool(1);
  std::thread::id worker_id;
  auto f = pool.submit([&] { worker_id = std::this_thread::get_id(); });
  EXPECT_EQ(worker_id, std::this_thread::get_id());  // already ran
  f.wait();
}

TEST(ThreadPoolSubmit, ManyTasksAllComplete) {
  net::ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolSubmit, TaskExceptionSurfacesThroughFuture) {
  net::ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolSubmit, CoexistsWithParallelFor) {
  net::ThreadPool pool(4);
  std::atomic<int> ran{0};
  auto f = pool.submit([&] { ran.fetch_add(1); });
  std::atomic<int> sum{0};
  pool.parallel_for(100, 1, [&](std::size_t begin, std::size_t end) {
    sum.fetch_add(static_cast<int>(end - begin));
  });
  f.wait();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(sum.load(), 100);
}

}  // namespace
}  // namespace sdx::core
