/// Tests for the BGP substrate: wire codec round trips (property-tested),
/// decision process ordering, route-server behavior (per-participant best
/// routes, export/loop rules, change events), AS-path filters and update
/// stream statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bgp/aspath_regex.hpp"
#include "bgp/decision.hpp"
#include "bgp/rib.hpp"
#include "bgp/route_server.hpp"
#include "bgp/update_stream.hpp"
#include "bgp/wire.hpp"
#include "netbase/rng.hpp"

namespace sdx::bgp {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;
using net::SplitMix64;

RouteAttributes attrs(std::initializer_list<Asn> path,
                      const char* next_hop = "10.0.0.1") {
  RouteAttributes a;
  a.as_path = AsPath(path);
  a.next_hop = Ipv4Address::parse(next_hop);
  return a;
}

Route make_route(const char* prefix, std::initializer_list<Asn> path,
                 ParticipantId from, const char* router_id = "1.1.1.1") {
  Route r;
  r.prefix = Ipv4Prefix::parse(prefix);
  r.attrs = attrs(path);
  r.learned_from = from;
  r.peer_router_id = Ipv4Address::parse(router_id);
  return r;
}

// ---------------------------------------------------------------------------
// Wire codec

TEST(Wire, KeepaliveRoundTrip) {
  auto bytes = encode(KeepaliveMessage{});
  EXPECT_EQ(bytes.size(), 19u);
  auto result = decode(bytes);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(std::holds_alternative<KeepaliveMessage>(*result.message));
  EXPECT_EQ(result.bytes_consumed, 19u);
}

TEST(Wire, OpenRoundTrip) {
  OpenMessage open;
  open.my_as = 65001;
  open.hold_time = 180;
  open.bgp_id = Ipv4Address::parse("192.0.2.1");
  open.opt_params = {0x02, 0x00};
  auto result = decode(encode(open));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(std::get<OpenMessage>(*result.message), open);
}

TEST(Wire, OpenWithWideAsnUsesAsTrans) {
  OpenMessage open;
  open.my_as = 4200000000;  // does not fit in 16 bits
  open.bgp_id = Ipv4Address::parse("192.0.2.1");
  auto result = decode(encode(open));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(std::get<OpenMessage>(*result.message).my_as, kAsTrans);
}

TEST(Wire, UpdateRoundTripWithAllAttributes) {
  UpdateMessage u;
  u.withdrawn = {Ipv4Prefix::parse("198.51.100.0/24")};
  RouteAttributes a;
  a.origin = Origin::kEgp;
  a.as_path = AsPath{65001, 65002, 43515};
  a.next_hop = Ipv4Address::parse("203.0.113.7");
  a.med = 50;
  a.local_pref = 200;
  a.communities = {0xFFFFFF01u, (65001u << 16) | 100u};
  u.attrs = a;
  u.nlri = {Ipv4Prefix::parse("10.0.0.0/8"), Ipv4Prefix::parse("0.0.0.0/0"),
            Ipv4Prefix::parse("192.0.2.128/25")};
  auto result = decode(encode(u));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(std::get<UpdateMessage>(*result.message), u);
}

TEST(Wire, PureWithdrawalHasNoAttributes) {
  UpdateMessage u;
  u.withdrawn = {Ipv4Prefix::parse("10.0.0.0/8")};
  auto result = decode(encode(u));
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& got = std::get<UpdateMessage>(*result.message);
  EXPECT_FALSE(got.attrs.has_value());
  EXPECT_EQ(got.withdrawn, u.withdrawn);
}

TEST(Wire, NotificationRoundTrip) {
  NotificationMessage n{6, 2, {0xDE, 0xAD}};
  auto result = decode(encode(n));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(std::get<NotificationMessage>(*result.message), n);
}

TEST(Wire, RejectsCorruptedMarker) {
  auto bytes = encode(KeepaliveMessage{});
  bytes[3] = 0x00;
  EXPECT_FALSE(decode(bytes).ok());
}

TEST(Wire, RejectsTruncatedMessage) {
  auto bytes = encode(KeepaliveMessage{});
  bytes.pop_back();
  // Length field says 19 but only 18 bytes present.
  EXPECT_FALSE(decode(bytes).ok());
}

TEST(Wire, RejectsBadPrefixLength) {
  UpdateMessage u;
  u.withdrawn = {Ipv4Prefix::parse("10.0.0.0/8")};
  auto bytes = encode(u);
  // Withdrawn block starts right after the header + 2-byte length:
  // byte 21 is the prefix length. Corrupt it to 33.
  bytes[21] = 33;
  EXPECT_FALSE(decode(bytes).ok());
}

TEST(Wire, RejectsNlriWithoutAttributes) {
  // Hand-craft an UPDATE with NLRI but an empty attribute block.
  UpdateMessage u;
  u.nlri = {Ipv4Prefix::parse("10.0.0.0/8")};
  RouteAttributes a;
  a.as_path = AsPath{65001};
  a.next_hop = Ipv4Address::parse("10.0.0.1");
  u.attrs = a;
  auto bytes = encode(u);
  // Zero the attribute-block length and splice the NLRI right after it.
  UpdateMessage bare;
  auto hdr = encode(bare);  // minimal update: wd_len=0, attr_len=0
  // Build: header(19) + wd_len(2)=0 + attr_len(2)=0 + one NLRI prefix.
  std::vector<std::uint8_t> crafted(hdr.begin(), hdr.end());
  crafted.push_back(8);     // prefix length bits
  crafted.push_back(10);    // 10.0.0.0/8 → one octet
  const std::uint16_t len = static_cast<std::uint16_t>(crafted.size());
  crafted[16] = static_cast<std::uint8_t>(len >> 8);
  crafted[17] = static_cast<std::uint8_t>(len);
  EXPECT_FALSE(decode(crafted).ok());
}

TEST(Wire, AsSetSegmentsFoldIntoTheFlatPath) {
  // Hand-craft an UPDATE whose AS_PATH is SEQUENCE{65001} SET{7, 8}: the
  // decoder must accept it and surface all three ASNs for loop detection.
  UpdateMessage u;
  RouteAttributes a;
  a.as_path = AsPath{65001, 7, 8};
  a.next_hop = Ipv4Address::parse("10.0.0.1");
  u.attrs = a;
  u.nlri = {Ipv4Prefix::parse("100.0.0.0/8")};
  auto bytes = encode(u);
  // The encoded AS_PATH body is SEQUENCE(type 2), len 3, 3×4 bytes at a
  // fixed offset: header(19) + wd_len(2) + attr_len(2) + ORIGIN(4) +
  // AS_PATH header(3). Rewrite it into two segments in place.
  const std::size_t seg = 19 + 2 + 2 + 4 + 3;
  ASSERT_EQ(bytes[seg], 2);      // AS_SEQUENCE
  ASSERT_EQ(bytes[seg + 1], 3);  // 3 ASNs
  bytes[seg + 1] = 1;            // SEQUENCE{65001}
  // Overwrite the second ASN's first byte region with a SET header by
  // shifting: simpler — rebuild the attribute body manually.
  std::vector<std::uint8_t> crafted(bytes.begin(), bytes.begin() + seg - 3);
  auto push_attr_hdr = [&crafted](std::uint8_t len) {
    crafted.push_back(0x40);  // transitive
    crafted.push_back(2);     // AS_PATH
    crafted.push_back(len);
  };
  push_attr_hdr(2 + 4 + 2 + 8);  // two segment headers + 3 ASNs
  auto push_u32 = [&crafted](std::uint32_t v) {
    crafted.push_back(static_cast<std::uint8_t>(v >> 24));
    crafted.push_back(static_cast<std::uint8_t>(v >> 16));
    crafted.push_back(static_cast<std::uint8_t>(v >> 8));
    crafted.push_back(static_cast<std::uint8_t>(v));
  };
  crafted.push_back(2);  // AS_SEQUENCE
  crafted.push_back(1);
  push_u32(65001);
  crafted.push_back(1);  // AS_SET
  crafted.push_back(2);
  push_u32(7);
  push_u32(8);
  // NEXT_HOP attribute + NLRI, copied from a minimal reference message.
  crafted.push_back(0x40);
  crafted.push_back(3);
  crafted.push_back(4);
  push_u32(Ipv4Address::parse("10.0.0.1").value());
  // ORIGIN attribute (well-known mandatory).
  crafted.insert(crafted.begin() + 19 + 2 + 2,
                 {0x40, 1, 1, 0});
  crafted.push_back(8);
  crafted.push_back(100);
  // Fix the attribute-block length and total length.
  const std::uint16_t attrs_len = static_cast<std::uint16_t>(
      crafted.size() - (19 + 2 + 2) - 2);
  crafted[19 + 2] = static_cast<std::uint8_t>(attrs_len >> 8);
  crafted[19 + 2 + 1] = static_cast<std::uint8_t>(attrs_len);
  const std::uint16_t total = static_cast<std::uint16_t>(crafted.size());
  crafted[16] = static_cast<std::uint8_t>(total >> 8);
  crafted[17] = static_cast<std::uint8_t>(total);

  auto result = decode(crafted);
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& got = std::get<UpdateMessage>(*result.message);
  ASSERT_TRUE(got.attrs.has_value());
  EXPECT_EQ(got.attrs->as_path, (AsPath{65001, 7, 8}));
}

class WireRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireRoundTrip, RandomUpdatesSurviveEncodeDecode) {
  SplitMix64 rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    UpdateMessage u;
    const std::size_t n_wd = rng.below(4);
    for (std::size_t i = 0; i < n_wd; ++i) {
      u.withdrawn.push_back(
          Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(rng())),
                     static_cast<int>(rng.range(0, 32))));
    }
    const std::size_t n_nlri = rng.below(5);
    if (n_nlri > 0 || rng.chance(0.5)) {
      RouteAttributes a;
      a.origin = static_cast<Origin>(rng.below(3));
      std::vector<Asn> path;
      for (std::size_t i = 0, e = rng.range(1, 300); i < e; ++i) {
        path.push_back(static_cast<Asn>(rng.range(1, 4000000000ull)));
      }
      a.as_path = AsPath(std::move(path));
      a.next_hop = Ipv4Address(static_cast<std::uint32_t>(rng()));
      if (rng.chance(0.5)) a.med = static_cast<std::uint32_t>(rng());
      if (rng.chance(0.5)) a.local_pref = static_cast<std::uint32_t>(rng());
      for (std::size_t i = 0, e = rng.below(4); i < e; ++i) {
        a.communities.push_back(static_cast<std::uint32_t>(rng()));
      }
      u.attrs = std::move(a);
    }
    for (std::size_t i = 0; i < n_nlri; ++i) {
      u.nlri.push_back(
          Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(rng())),
                     static_cast<int>(rng.range(0, 32))));
    }
    auto result = decode(encode(u));
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(std::get<UpdateMessage>(*result.message), u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Decision process

TEST(Decision, LocalPrefDominates) {
  Route a = make_route("10.0.0.0/8", {1, 2, 3}, 1);
  Route b = make_route("10.0.0.0/8", {1}, 2);
  a.attrs.local_pref = 200;  // longer path but higher local-pref
  EXPECT_TRUE(better(a, b));
  EXPECT_FALSE(better(b, a));
}

TEST(Decision, ShorterAsPathWins) {
  Route a = make_route("10.0.0.0/8", {1, 2}, 1);
  Route b = make_route("10.0.0.0/8", {1, 2, 3}, 2);
  EXPECT_TRUE(better(a, b));
}

TEST(Decision, OriginOrdering) {
  Route a = make_route("10.0.0.0/8", {1, 2}, 1);
  Route b = make_route("10.0.0.0/8", {3, 4}, 2);
  a.attrs.origin = Origin::kIgp;
  b.attrs.origin = Origin::kIncomplete;
  EXPECT_TRUE(better(a, b));
}

TEST(Decision, MedOnlyComparedForSameNeighborAs) {
  Route a = make_route("10.0.0.0/8", {7, 2}, 1);
  Route b = make_route("10.0.0.0/8", {7, 3}, 2, "2.2.2.2");
  a.attrs.med = 100;
  b.attrs.med = 10;
  EXPECT_TRUE(better(b, a));  // same neighbor AS 7: lower MED wins

  Route c = make_route("10.0.0.0/8", {8, 3}, 2, "0.0.0.2");
  c.attrs.med = 10;
  a.peer_router_id = Ipv4Address::parse("0.0.0.1");
  // Different neighbor AS: MED skipped, falls through to router-id.
  EXPECT_TRUE(better(a, c));
  // With always-compare-med, the lower MED wins regardless.
  EXPECT_TRUE(better(c, a, DecisionConfig{.always_compare_med = true}));
}

TEST(Decision, RouterIdBreaksTies) {
  Route a = make_route("10.0.0.0/8", {1, 2}, 1, "1.1.1.1");
  Route b = make_route("10.0.0.0/8", {1, 3}, 2, "2.2.2.2");
  EXPECT_TRUE(better(a, b));
}

TEST(Decision, StrictWeakOrderOnRandomRoutes) {
  SplitMix64 rng(99);
  std::vector<Route> routes;
  for (int i = 0; i < 60; ++i) {
    Route r = make_route("10.0.0.0/8", {}, static_cast<ParticipantId>(i));
    std::vector<Asn> path;
    for (std::size_t k = 0, e = rng.range(1, 4); k < e; ++k) {
      path.push_back(static_cast<Asn>(rng.range(1, 5)));
    }
    r.attrs.as_path = AsPath(std::move(path));
    if (rng.chance(0.5)) r.attrs.local_pref = rng.range(100, 102);
    if (rng.chance(0.5)) r.attrs.med = rng.range(0, 2);
    r.attrs.origin = static_cast<Origin>(rng.below(3));
    r.peer_router_id = Ipv4Address(static_cast<std::uint32_t>(rng.below(4)));
    routes.push_back(r);
  }
  // Irreflexivity and asymmetry.
  for (const auto& a : routes) {
    EXPECT_FALSE(better(a, a));
    for (const auto& b : routes) {
      if (better(a, b)) {
        EXPECT_FALSE(better(b, a));
      }
    }
  }
  // select_best returns a maximal element.
  const Route* best = select_best(routes);
  ASSERT_NE(best, nullptr);
  for (const auto& r : routes) EXPECT_FALSE(better(r, *best));
}

// ---------------------------------------------------------------------------
// Rib

TEST(RibTest, AddWithdrawLpm) {
  Rib rib;
  EXPECT_TRUE(rib.add(make_route("10.0.0.0/8", {1}, 1)));
  EXPECT_FALSE(rib.add(make_route("10.0.0.0/8", {2}, 2)));  // replace
  EXPECT_TRUE(rib.add(make_route("10.20.0.0/16", {3}, 3)));
  EXPECT_EQ(rib.size(), 2u);

  const Route* r = rib.lookup(Ipv4Address::parse("10.20.1.1"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->prefix, Ipv4Prefix::parse("10.20.0.0/16"));

  r = rib.lookup(Ipv4Address::parse("10.99.1.1"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->attrs.as_path, AsPath{2});

  EXPECT_TRUE(rib.withdraw(Ipv4Prefix::parse("10.20.0.0/16")));
  EXPECT_EQ(rib.lookup(Ipv4Address::parse("10.20.1.1"))->prefix,
            Ipv4Prefix::parse("10.0.0.0/8"));
}

// ---------------------------------------------------------------------------
// Route server

class RouteServerFixture : public ::testing::Test {
 protected:
  RouteServerFixture() {
    server.add_peer({1, 65001, Ipv4Address::parse("10.0.0.1")});
    server.add_peer({2, 65002, Ipv4Address::parse("10.0.0.2")});
    server.add_peer({3, 65003, Ipv4Address::parse("10.0.0.3")});
  }
  RouteServer server;
};

TEST_F(RouteServerFixture, RejectsDuplicatePeerAndUnknownAnnouncer) {
  EXPECT_THROW(server.add_peer({1, 65009, Ipv4Address{}}),
               std::invalid_argument);
  EXPECT_THROW(server.announce(make_route("10.0.0.0/8", {65009}, 9)),
               std::invalid_argument);
  EXPECT_THROW(server.withdraw(9, Ipv4Prefix::parse("10.0.0.0/8")),
               std::invalid_argument);
}

TEST_F(RouteServerFixture, BestRouteExcludesOwnAnnouncement) {
  server.announce(make_route("10.0.0.0/8", {65001, 7}, 1));
  auto best_for_2 = server.best_route(2, Ipv4Prefix::parse("10.0.0.0/8"));
  ASSERT_TRUE(best_for_2.has_value());
  EXPECT_EQ(best_for_2->learned_from, 1u);
  // The announcer itself gets nothing back for its own route.
  EXPECT_FALSE(server.best_route(1, Ipv4Prefix::parse("10.0.0.0/8")));
}

TEST_F(RouteServerFixture, LoopPreventionFiltersPathsContainingPeerAsn) {
  // Path traverses 65002 — the server must not export it to participant 2.
  server.announce(make_route("10.0.0.0/8", {65001, 65002, 7}, 1));
  EXPECT_FALSE(server.best_route(2, Ipv4Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(server.best_route(3, Ipv4Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(server.exports_to(1, 2, Ipv4Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(server.exports_to(1, 3, Ipv4Prefix::parse("10.0.0.0/8")));
}

TEST_F(RouteServerFixture, PerParticipantBestDiffers) {
  // Participant 1 and 2 both announce p; 1's route is better (shorter).
  server.announce(make_route("20.0.0.0/8", {65001}, 1));
  server.announce(make_route("20.0.0.0/8", {65002, 7}, 2));
  auto p = Ipv4Prefix::parse("20.0.0.0/8");
  EXPECT_EQ(server.best_route(3, p)->learned_from, 1u);
  // For participant 1, its own route is ineligible → 2's route.
  EXPECT_EQ(server.best_route(1, p)->learned_from, 2u);
  EXPECT_EQ(server.best_route(2, p)->learned_from, 1u);
}

TEST_F(RouteServerFixture, AnnounceEmitsChangeEventsOnlyOnRealChanges) {
  auto p = Ipv4Prefix::parse("30.0.0.0/8");
  auto changes = server.announce(make_route("30.0.0.0/8", {65001, 7}, 1));
  // Participants 2 and 3 gain a best route; participant 1 does not (own).
  ASSERT_EQ(changes.size(), 2u);
  for (const auto& c : changes) {
    EXPECT_FALSE(c.old_best.has_value());
    ASSERT_TRUE(c.new_best.has_value());
    EXPECT_EQ(c.prefix, p);
  }
  // Re-announcing the identical route is a no-op.
  EXPECT_TRUE(server.announce(make_route("30.0.0.0/8", {65001, 7}, 1)).empty());

  // A worse route from 2 changes only participant 1's best.
  changes = server.announce(make_route("30.0.0.0/8", {65002, 8, 7}, 2));
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].participant, 1u);
  EXPECT_EQ(changes[0].new_best->learned_from, 2u);
}

TEST_F(RouteServerFixture, WithdrawFallsBackToNextBest) {
  auto p = Ipv4Prefix::parse("40.0.0.0/8");
  server.announce(make_route("40.0.0.0/8", {65001}, 1));
  server.announce(make_route("40.0.0.0/8", {65002, 7}, 2));
  auto changes = server.withdraw(1, p);
  // Participants 2 and 3 shift to 2's route; participant 2's own best was
  // 1's route which disappears... participant 2 loses eligibility of its own
  // route so its best becomes nothing.
  ASSERT_FALSE(changes.empty());
  EXPECT_EQ(server.best_route(3, p)->learned_from, 2u);
  EXPECT_FALSE(server.best_route(2, p).has_value());
  // Withdrawing everything empties the table.
  server.withdraw(2, p);
  EXPECT_FALSE(server.best_route(3, p).has_value());
  EXPECT_EQ(server.candidates(p), nullptr);
}

TEST_F(RouteServerFixture, ReachableViaListsExportedPrefixes) {
  server.announce(make_route("50.0.0.0/8", {65001}, 1));
  server.announce(make_route("51.0.0.0/8", {65001, 65003}, 1));  // loops to 3
  server.announce(make_route("52.0.0.0/8", {65002}, 2));
  auto reach = server.reachable_via(3, 1);
  ASSERT_EQ(reach.size(), 1u);
  EXPECT_EQ(reach[0], Ipv4Prefix::parse("50.0.0.0/8"));
  auto adv = server.advertised_by(1);
  EXPECT_EQ(adv.size(), 2u);
}

TEST_F(RouteServerFixture, NoExportCommunitySuppressesReAdvertisement) {
  Route r = make_route("70.0.0.0/8", {65001, 7}, 1);
  r.attrs.communities = {kNoExport};
  server.announce(r);
  EXPECT_FALSE(server.best_route(2, Ipv4Prefix::parse("70.0.0.0/8")));
  EXPECT_FALSE(server.best_route(3, Ipv4Prefix::parse("70.0.0.0/8")));
  EXPECT_FALSE(server.exports_to(1, 2, Ipv4Prefix::parse("70.0.0.0/8")));
}

TEST_F(RouteServerFixture, NoAdvertiseCommunityBehavesLikeNoExport) {
  Route r = make_route("71.0.0.0/8", {65001, 7}, 1);
  r.attrs.communities = {kNoAdvertise};
  server.announce(r);
  EXPECT_FALSE(server.best_route(3, Ipv4Prefix::parse("71.0.0.0/8")));
}

TEST_F(RouteServerFixture, PerPeerBlockingCommunity) {
  // "0:65002" — do not export to AS 65002 (participant 2).
  Route r = make_route("72.0.0.0/8", {65001, 7}, 1);
  r.attrs.communities = {make_community(0, 65002)};
  server.announce(r);
  EXPECT_FALSE(server.best_route(2, Ipv4Prefix::parse("72.0.0.0/8")));
  ASSERT_TRUE(server.best_route(3, Ipv4Prefix::parse("72.0.0.0/8")));
  EXPECT_FALSE(server.exports_to(1, 2, Ipv4Prefix::parse("72.0.0.0/8")));
  EXPECT_TRUE(server.exports_to(1, 3, Ipv4Prefix::parse("72.0.0.0/8")));
}

TEST_F(RouteServerFixture, OrdinaryCommunitiesDoNotAffectExport) {
  Route r = make_route("73.0.0.0/8", {65001, 7}, 1);
  r.attrs.communities = {make_community(65001, 100)};
  server.announce(r);
  EXPECT_TRUE(server.best_route(2, Ipv4Prefix::parse("73.0.0.0/8")));
}

TEST_F(RouteServerFixture, FilterPrefixesByAsPath) {
  server.announce(make_route("60.0.0.0/8", {65001, 43515}, 1));
  server.announce(make_route("61.0.0.0/8", {65001, 143515}, 1));
  server.announce(make_route("62.0.0.0/8", {65001, 43515, 9}, 1));
  auto yt = filter_rib(server, 3, AsPathFilter::originated_by(43515));
  ASSERT_EQ(yt.size(), 1u);
  EXPECT_EQ(yt[0], Ipv4Prefix::parse("60.0.0.0/8"));
  auto through = filter_rib(server, 3, AsPathFilter::traverses(43515));
  EXPECT_EQ(through.size(), 2u);
}

TEST(AsPathFilterTest, TokenizedAnchoringAvoidsSubstringMatches) {
  auto f = AsPathFilter::originated_by(3515);
  EXPECT_TRUE(f.matches(AsPath{100, 3515}));
  EXPECT_FALSE(f.matches(AsPath{100, 43515}));
  EXPECT_TRUE(f.matches(AsPath{3515}));
  auto t = AsPathFilter::traverses(200);
  EXPECT_TRUE(t.matches(AsPath{200, 300}));
  EXPECT_TRUE(t.matches(AsPath{100, 200, 300}));
  EXPECT_TRUE(t.matches(AsPath{100, 200}));
  EXPECT_FALSE(t.matches(AsPath{100, 1200, 300}));
}

TEST(AsPathFilterTest, RawRegexAsInPaper) {
  AsPathFilter f(".*43515$");  // the paper's YouTube example, verbatim
  EXPECT_TRUE(f.matches(AsPath{100, 200, 43515}));
  EXPECT_FALSE(f.matches(AsPath{100, 43515, 200}));
}

// ---------------------------------------------------------------------------
// Update streams

TEST(UpdateStream, SegmentsBurstsOnQuietGaps) {
  std::vector<TimedUpdate> stream;
  auto push = [&stream](double t, const char* p) {
    TimedUpdate u;
    u.timestamp = t;
    u.prefix = Ipv4Prefix::parse(p);
    stream.push_back(u);
  };
  push(0.0, "10.0.0.0/8");
  push(1.0, "11.0.0.0/8");
  push(2.0, "10.0.0.0/8");  // same prefix again
  push(30.0, "12.0.0.0/8");
  push(31.0, "13.0.0.0/8");
  push(100.0, "14.0.0.0/8");

  auto bursts = segment_bursts(stream, 10.0);
  ASSERT_EQ(bursts.size(), 3u);
  EXPECT_EQ(bursts[0].update_count, 3u);
  EXPECT_EQ(bursts[0].distinct_prefixes, 2u);
  EXPECT_EQ(bursts[1].update_count, 2u);
  EXPECT_EQ(bursts[2].update_count, 1u);
  EXPECT_DOUBLE_EQ(bursts[1].start_time, 30.0);
}

TEST(UpdateStream, EmptyStream) {
  EXPECT_TRUE(segment_bursts({}, 10.0).empty());
  auto s = compute_stats({}, 10.0);
  EXPECT_EQ(s.total_updates, 0u);
  EXPECT_EQ(s.burst_count, 0u);
}

TEST(UpdateStream, StatsCountAnnouncementsAndWithdrawals) {
  std::vector<TimedUpdate> stream;
  TimedUpdate a;
  a.timestamp = 0;
  a.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  a.attrs = attrs({65001});
  stream.push_back(a);
  TimedUpdate w;
  w.timestamp = 100;
  w.prefix = Ipv4Prefix::parse("10.0.0.0/8");
  stream.push_back(w);
  auto s = compute_stats(stream, 10.0);
  EXPECT_EQ(s.total_updates, 2u);
  EXPECT_EQ(s.announcement_count, 1u);
  EXPECT_EQ(s.withdrawal_count, 1u);
  EXPECT_EQ(s.distinct_prefixes, 1u);
  EXPECT_EQ(s.burst_count, 2u);
}

TEST(UpdateStream, QuantileLinearInterpolation) {
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile({5}, 0.75), 5.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace sdx::bgp
