/// Algebraic laws of the policy language, property-tested over random
/// policies and packets: the equations Pyretic's semantics promise (and
/// the SDX compiler silently relies on when it reorders and prunes
/// compositions).

#include <gtest/gtest.h>

#include <algorithm>

#include "netbase/rng.hpp"
#include "policy/compile.hpp"
#include "policy/policy.hpp"

namespace sdx::policy {
namespace {

using net::Field;
using net::Ipv4Address;
using net::Ipv4Prefix;
using net::PacketBuilder;
using net::PacketHeader;
using net::SplitMix64;

/// Sorted evaluation for set comparison.
std::vector<PacketHeader> norm_eval(const Policy& p, const PacketHeader& h) {
  auto out = p.eval(h);
  std::sort(out.begin(), out.end());
  return out;
}

class Gen {
 public:
  explicit Gen(std::uint64_t seed) : rng_(seed) {}

  Predicate pred() {
    switch (rng_.below(4)) {
      case 0:
        return Predicate::test(Field::kDstPort, rng_.range(0, 2));
      case 1:
        return Predicate::test(
            Field::kDstIp, Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(
                                          rng_.below(4) << 30)),
                                      static_cast<int>(rng_.range(1, 2))));
      case 2:
        return Predicate::test(Field::kPort, rng_.range(0, 2));
      default:
        return rng_.chance(0.5) ? Predicate::truth() : Predicate::falsity();
    }
  }

  Policy atom() {
    switch (rng_.below(5)) {
      case 0:
        return drop();
      case 1:
        return identity();
      case 2:
        return fwd(static_cast<net::PortId>(rng_.range(0, 2)));
      case 3:
        return modify(Field::kDstPort, rng_.range(0, 2));
      default:
        return match(pred());
    }
  }

  Policy policy(int depth) {
    if (depth <= 0 || rng_.chance(0.4)) return atom();
    return rng_.chance(0.5) ? policy(depth - 1) + policy(depth - 1)
                            : policy(depth - 1) >> policy(depth - 1);
  }

  PacketHeader packet() {
    return PacketBuilder()
        .port(static_cast<net::PortId>(rng_.range(0, 2)))
        .dst_ip(Ipv4Address(static_cast<std::uint32_t>(rng_.below(4) << 30)))
        .dst_port(rng_.range(0, 2))
        .build();
  }

 private:
  SplitMix64 rng_;
};

class PolicyAlgebra : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void check_equal(const Policy& lhs, const Policy& rhs, Gen& gen,
                   const char* law) {
    for (int i = 0; i < 20; ++i) {
      PacketHeader h = gen.packet();
      ASSERT_EQ(norm_eval(lhs, h), norm_eval(rhs, h))
          << law << "\n  lhs: " << lhs.to_string()
          << "\n  rhs: " << rhs.to_string() << "\n  pkt: " << h.to_string();
    }
  }
};

TEST_P(PolicyAlgebra, ParallelIsCommutativeAndAssociative) {
  Gen gen(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    Policy a = gen.policy(2), b = gen.policy(2), c = gen.policy(2);
    check_equal(a + b, b + a, gen, "commutativity of +");
    check_equal((a + b) + c, a + (b + c), gen, "associativity of +");
  }
}

TEST_P(PolicyAlgebra, SequentialIsAssociativeWithIdentityUnit) {
  Gen gen(GetParam() * 3 + 1);
  for (int trial = 0; trial < 25; ++trial) {
    Policy a = gen.policy(2), b = gen.policy(2), c = gen.policy(2);
    check_equal((a >> b) >> c, a >> (b >> c), gen, "associativity of >>");
    check_equal(identity() >> a, a, gen, "left identity");
    check_equal(a >> identity(), a, gen, "right identity");
  }
}

TEST_P(PolicyAlgebra, DropAnnihilatesAndIsParallelUnit) {
  Gen gen(GetParam() * 5 + 2);
  for (int trial = 0; trial < 25; ++trial) {
    Policy a = gen.policy(2);
    check_equal(a + drop(), a, gen, "drop is unit of +");
    check_equal(drop() >> a, drop(), gen, "drop annihilates on the left");
    check_equal(a >> drop(), drop(), gen, "drop annihilates on the right");
  }
}

TEST_P(PolicyAlgebra, SequentialDistributesOverParallelFromTheRight) {
  // (a + b) >> c  ≡  (a >> c) + (b >> c) — the distributivity §4.3.1 uses
  // to decompose the global composition into pairwise terms.
  Gen gen(GetParam() * 7 + 3);
  for (int trial = 0; trial < 25; ++trial) {
    Policy a = gen.policy(2), b = gen.policy(2), c = gen.policy(2);
    check_equal((a + b) >> c, (a >> c) + (b >> c), gen,
                "right distributivity");
  }
}

TEST_P(PolicyAlgebra, FilterConjunctionEqualsSequentialFilters) {
  Gen gen(GetParam() * 11 + 4);
  for (int trial = 0; trial < 25; ++trial) {
    Predicate p = gen.pred(), q = gen.pred();
    check_equal(match(p & q), match(p) >> match(q),
                gen, "filter(p∧q) = filter(p) >> filter(q)");
    check_equal(match(p | q), match(p) + match(q), gen,
                "filter(p∨q) = filter(p) + filter(q)");
  }
}

TEST_P(PolicyAlgebra, PredicateDeMorganAndComplement) {
  Gen gen(GetParam() * 13 + 5);
  for (int trial = 0; trial < 25; ++trial) {
    Predicate p = gen.pred(), q = gen.pred();
    check_equal(match(!(p & q)), match((!p) | (!q)), gen, "De Morgan ∧");
    check_equal(match(!(p | q)), match((!p) & (!q)), gen, "De Morgan ∨");
    check_equal(match(p) + match(!p), identity(), gen,
                "p ∨ ¬p passes everything");
    check_equal(match(p) >> match(!p), drop(), gen,
                "p ∧ ¬p passes nothing");
  }
}

TEST_P(PolicyAlgebra, IfIsFilterDecomposition) {
  Gen gen(GetParam() * 17 + 6);
  for (int trial = 0; trial < 25; ++trial) {
    Predicate p = gen.pred();
    Policy a = gen.policy(2), b = gen.policy(2);
    check_equal(if_(p, a, b),
                (match(p) >> a) + (match(!p) >> b), gen,
                "if_ decomposition");
  }
}

TEST_P(PolicyAlgebra, ModOverwriteAndAbsorption) {
  Gen gen(GetParam() * 19 + 7);
  for (int trial = 0; trial < 25; ++trial) {
    const std::uint64_t v1 = gen.packet().get(Field::kDstPort);
    const std::uint64_t v2 = v1 + 1;
    // Later writes win.
    check_equal(modify(Field::kDstPort, v1) >> modify(Field::kDstPort, v2),
                modify(Field::kDstPort, v2), gen, "mod absorption");
    // A mod followed by a test of the written value passes everything.
    check_equal(
        modify(Field::kDstPort, v1) >>
            match(Predicate::test(Field::kDstPort, v1)),
        modify(Field::kDstPort, v1), gen, "mod then matching test");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyAlgebra,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace sdx::policy
