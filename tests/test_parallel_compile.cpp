/// Parallel-compilation determinism: for every thread count the compiled
/// output — fabric rule list (contents and order), stats, FEC groups and
/// ids, VNH bindings — must be byte-identical to the serial result. Also
/// unit-tests the netbase thread pool and the sharded FEC merge.
///
/// Run this binary under `cmake -DSDX_SANITIZE=thread` to have TSan check
/// the slot-ownership discipline of every parallel stage.

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "ixp/ixp_generator.hpp"
#include "netbase/parallel.hpp"
#include "sdx/compiler.hpp"
#include "sdx/fec.hpp"
#include "sdx/runtime.hpp"
#include "sdx/vnh_allocator.hpp"

namespace sdx::core {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  net::ThreadPool pool(8);
  EXPECT_EQ(pool.size(), 8u);
  std::vector<int> hits(20000, 0);
  pool.parallel_for(hits.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];  // slot-owned write
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPoolTest, ParallelMapFillsSlotsInOrder) {
  net::ThreadPool pool(4);
  auto squares = pool.parallel_map(
      1000, 1, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 1000u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  net::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t calls = 0;
  pool.parallel_for(100, 1, [&](std::size_t begin, std::size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
  });
  EXPECT_EQ(calls, 1u);  // one inline invocation, no chunking
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  net::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(5000, 1,
                        [](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                            if (i == 4321) throw std::runtime_error("boom");
                          }
                        }),
      std::runtime_error);
  // The pool survives a failed loop.
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPoolTest, ManyConsecutiveLoopsReuseWorkers) {
  net::ThreadPool pool(8);
  std::vector<std::size_t> acc(512, 0);
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(acc.size(), 1,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) ++acc[i];
                      });
  }
  EXPECT_TRUE(std::all_of(acc.begin(), acc.end(),
                          [](std::size_t a) { return a == 200; }));
}

// ---------------------------------------------------------------------------
// Sharded FEC merge

void expect_fec_equal(const FecResult& serial, const FecResult& parallel) {
  ASSERT_EQ(serial.groups.size(), parallel.groups.size());
  for (std::size_t g = 0; g < serial.groups.size(); ++g) {
    EXPECT_EQ(serial.groups[g].prefixes, parallel.groups[g].prefixes)
        << "group " << g;
    EXPECT_EQ(serial.groups[g].clauses, parallel.groups[g].clauses)
        << "group " << g;
    EXPECT_EQ(serial.groups[g].defaults, parallel.groups[g].defaults)
        << "group " << g;
  }
  EXPECT_EQ(serial.group_of, parallel.group_of);
}

std::vector<Ipv4Prefix> dense_prefixes(std::size_t n) {
  std::vector<Ipv4Prefix> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Ipv4Prefix(
        Ipv4Address((20u << 24) | (static_cast<std::uint32_t>(i) << 8)), 24));
  }
  return out;
}

TEST(FecShardMergeTest, ShardedResultIsByteIdenticalToSerial) {
  // Enough prefixes that an 8-thread pool uses many shards, with group
  // signatures spread so every shard holds pieces of several groups.
  const auto universe = dense_prefixes(900);
  std::vector<ClauseReach> clauses(6);
  for (std::size_t i = 0; i < universe.size(); ++i) {
    for (std::size_t c = 0; c < clauses.size(); ++c) {
      if (i % (c + 2) == 0) clauses[c].prefixes.push_back(universe[i]);
    }
  }
  auto defaults_of = [&](Ipv4Prefix p) {
    DefaultVector d(4);
    const std::uint32_t v = p.network().value() >> 8;
    d[0] = v % 3;
    if (v % 5 != 0) d[2] = v % 7;
    return d;
  };

  auto serial = compute_fecs(clauses, defaults_of, nullptr);
  for (unsigned threads : {2u, 8u}) {
    net::ThreadPool pool(threads);
    auto parallel = compute_fecs(clauses, defaults_of, &pool);
    expect_fec_equal(serial, parallel);
  }
}

TEST(FecShardMergeTest, CollidingSignaturesAcrossShardsMergeToOneGroup) {
  // Every prefix carries the same (clause set, default vector) signature
  // but hashes into different shards: the canonical merge must collapse
  // all shard-local groups into a single global one.
  const auto universe = dense_prefixes(700);
  std::vector<ClauseReach> clauses(2);
  clauses[0].prefixes = universe;
  clauses[1].prefixes = universe;
  auto defaults_of = [](Ipv4Prefix) {
    DefaultVector d(3);
    d[1] = 9u;
    return d;
  };

  net::ThreadPool pool(8);
  auto result = compute_fecs(clauses, defaults_of, &pool);
  ASSERT_EQ(result.group_count(), 1u);
  EXPECT_EQ(result.groups[0].prefixes.size(), universe.size());
  EXPECT_TRUE(std::is_sorted(result.groups[0].prefixes.begin(),
                             result.groups[0].prefixes.end()));
  EXPECT_EQ(result.groups[0].clauses, (std::vector<std::uint32_t>{0, 1}));
  for (auto p : universe) EXPECT_EQ(result.group_of.at(p), 0u);
  expect_fec_equal(compute_fecs(clauses, defaults_of, nullptr), result);
}

// ---------------------------------------------------------------------------
// Full-pipeline determinism on a generated IXP workload

ixp::GeneratedIxp make_ixp() {
  ixp::GeneratorConfig cfg;
  cfg.participants = 30;
  cfg.prefixes = 600;
  cfg.seed = 5;
  auto ixp = ixp::generate_ixp(cfg);
  ixp::PolicySynthConfig pcfg;
  pcfg.seed = 11;
  pcfg.policy_prefixes = ixp::sample_policy_prefixes(ixp, 250, 13);
  ixp::synthesize_policies(ixp, pcfg);
  return ixp;
}

CompiledSdx compile_with(const ixp::GeneratedIxp& ixp, unsigned threads) {
  CompileOptions options;
  options.threads = threads;
  SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server, options);
  VnhAllocator vnh;
  return compiler.compile(vnh);
}

TEST(ParallelCompileDeterminism, ThreadCountNeverChangesTheOutput) {
  const auto ixp = make_ixp();
  const CompiledSdx serial = compile_with(ixp, 1);
  EXPECT_EQ(serial.stats.threads_used, 1u);
  ASSERT_GT(serial.stats.final_rules, 0u);
  ASSERT_GT(serial.fecs.group_count(), 1u);

  for (unsigned threads : {2u, 8u}) {
    const CompiledSdx parallel = compile_with(ixp, threads);
    EXPECT_EQ(parallel.stats.threads_used, threads);

    // Fabric: same rules, same order, same actions (string form is the
    // byte-level witness).
    EXPECT_EQ(parallel.stats.final_rules, serial.stats.final_rules);
    EXPECT_EQ(parallel.fabric.to_string(), serial.fabric.to_string());

    // Stats that summarize the pipeline must agree exactly.
    EXPECT_EQ(parallel.stats.stage1_rules, serial.stats.stage1_rules);
    EXPECT_EQ(parallel.stats.clause_count, serial.stats.clause_count);
    EXPECT_EQ(parallel.stats.prefix_groups, serial.stats.prefix_groups);
    EXPECT_EQ(parallel.stats.prefixes_grouped, serial.stats.prefixes_grouped);
    EXPECT_EQ(parallel.stats.pair_compositions,
              serial.stats.pair_compositions);

    // FEC group membership and ids.
    expect_fec_equal(serial.fecs, parallel.fecs);

    // Clause reach sets in global clause order.
    ASSERT_EQ(parallel.reaches.size(), serial.reaches.size());
    for (std::size_t i = 0; i < serial.reaches.size(); ++i) {
      EXPECT_EQ(parallel.reaches[i].owner, serial.reaches[i].owner);
      EXPECT_EQ(parallel.reaches[i].clause_index,
                serial.reaches[i].clause_index);
      EXPECT_EQ(parallel.reaches[i].prefixes, serial.reaches[i].prefixes);
    }

    // VNH/VMAC bindings, group-for-group.
    EXPECT_EQ(parallel.bindings, serial.bindings);
  }
}

TEST(ParallelCompileDeterminism, AblationModesStayDeterministicToo) {
  const auto ixp = make_ixp();
  for (bool prune : {false, true}) {
    for (bool memoize : {false, true}) {
      CompileOptions options;
      options.prune_pairs = prune;
      options.memoize_stage2 = memoize;
      options.threads = 1;
      SdxCompiler serial(ixp.participants, ixp.ports, ixp.server, options);
      VnhAllocator vnh1;
      const auto want = serial.compile(vnh1);
      options.threads = 8;
      SdxCompiler parallel(ixp.participants, ixp.ports, ixp.server, options);
      VnhAllocator vnh8;
      const auto got = parallel.compile(vnh8);
      EXPECT_EQ(got.fabric.to_string(), want.fabric.to_string())
          << "prune=" << prune << " memoize=" << memoize;
      EXPECT_EQ(got.stats.pair_compositions, want.stats.pair_compositions);
    }
  }
}

TEST(ParallelCompileDeterminism, RuntimeThreadKnobKeepsDeployIdentical) {
  auto build = [](unsigned threads) {
    SdxRuntime sdx;
    sdx.set_compile_threads(threads);
    const auto a = sdx.add_participant("A", 65001);
    const auto b = sdx.add_participant("B", 65002, /*port_count=*/2);
    const auto c = sdx.add_participant("C", 65003);
    sdx.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b},
                         OutboundClause{ClauseMatch{}.dst_port(443), c}});
    for (std::uint32_t i = 0; i < 24; ++i) {
      const Ipv4Prefix p(Ipv4Address((100u << 24) | (i << 16)), 16);
      sdx.announce(b, p);
      if (i % 3 != 0) sdx.announce(c, p);
    }
    sdx.install();
    return sdx.compiled().fabric.to_string();
  };
  const std::string serial = build(1);
  EXPECT_EQ(build(4), serial);
}

}  // namespace
}  // namespace sdx::core
