/// Runtime lifecycle and negative-path tests: API misuse must fail loudly
/// and leave the controller consistent; re-installation, counters and
/// accessors behave across the whole lifecycle.

#include <gtest/gtest.h>

#include "sdx/runtime.hpp"

namespace sdx::core {
namespace {

using net::Ipv4Prefix;
using net::PacketBuilder;

TEST(RuntimeLifecycle, AccessorsRejectUnknownIds) {
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001);
  EXPECT_THROW(rt.participant(99), std::out_of_range);
  EXPECT_THROW(rt.router(99), std::out_of_range);
  EXPECT_THROW(rt.router(a, 5), std::out_of_range);
  EXPECT_EQ(rt.find("nope"), nullptr);
  EXPECT_NE(rt.find("A"), nullptr);
  EXPECT_THROW(rt.set_outbound(99, {}), std::out_of_range);
}

TEST(RuntimeLifecycle, TopologyFreezesAtInstall) {
  SdxRuntime rt;
  rt.add_participant("A", 65001);
  rt.add_participant("B", 65002);
  rt.install();
  EXPECT_THROW(rt.add_participant("C", 65003), std::logic_error);
  EXPECT_THROW(rt.add_remote_participant("T", 65010), std::logic_error);
}

TEST(RuntimeLifecycle, BackgroundRecompileRequiresInstall) {
  SdxRuntime rt;
  rt.add_participant("A", 65001);
  EXPECT_THROW(rt.background_recompile(), std::logic_error);
  EXPECT_FALSE(rt.installed());
}

TEST(RuntimeLifecycle, ZeroPortParticipantRejected) {
  SdxRuntime rt;
  EXPECT_THROW(rt.add_participant("A", 65001, 0), std::invalid_argument);
}

TEST(RuntimeLifecycle, ReinstallAfterPolicyChangeIsConsistent) {
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  auto c = rt.add_participant("C", 65003);
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65002, 9});
  rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
  rt.install();
  auto web = PacketBuilder().dst_ip("100.1.1.1").dst_port(80).build();
  // Without a policy: the BGP default (C).
  EXPECT_EQ(rt.send(a, web)[0].port, rt.participant(c).ports[0].id);
  // Install the policy, re-deploy: traffic diverts.
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
  rt.install();
  EXPECT_EQ(rt.send(a, web)[0].port, rt.participant(b).ports[0].id);
  // Remove it again: back to the default.
  rt.set_outbound(a, {});
  rt.install();
  EXPECT_EQ(rt.send(a, web)[0].port, rt.participant(c).ports[0].id);
}

TEST(RuntimeLifecycle, AnnouncementsBeforeInstallStillPopulateFibs) {
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"));
  // The routers already learned routes pre-install (real next hops).
  EXPECT_EQ(rt.router(a).rib().size(), 1u);
  // But the fabric has no rules yet, so traffic dies in the switch.
  EXPECT_TRUE(
      rt.send(a, PacketBuilder().dst_ip("100.1.1.1").build()).empty());
  rt.install();
  EXPECT_FALSE(
      rt.send(a, PacketBuilder().dst_ip("100.1.1.1").build()).empty());
}

TEST(RuntimeLifecycle, ArpCarriesVnhBindingsAfterInstall) {
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"));
  rt.install();
  ASSERT_EQ(rt.compiled().bindings.size(), 1u);
  const auto& binding = rt.compiled().bindings[0];
  auto resolved = rt.fabric().arp().resolve(binding.vnh);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, binding.vmac);
  // And the router's FIB entry points at the VNH.
  const auto* route =
      rt.router(a).rib().find(Ipv4Prefix::parse("100.1.0.0/16"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->attrs.next_hop, binding.vnh);
}

TEST(RuntimeLifecycle, SessionDownWithdrawsRoutesAndPolicies) {
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  auto c = rt.add_participant("C", 65003);
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
  rt.set_outbound(b, {OutboundClause{ClauseMatch{}.dst_port(80), c}});
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65002, 9});
  rt.announce(b, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65002, 9});
  rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
  rt.install();
  auto web = PacketBuilder().dst_ip("100.1.1.1").dst_port(80).build();
  ASSERT_EQ(rt.send(a, web)[0].port, rt.participant(b).ports[0].id);

  // B's session drops: its routes vanish, its policies too; traffic that
  // still has a route (via C) follows it, the rest blackholes.
  EXPECT_EQ(rt.session_down(b), 2u);
  EXPECT_TRUE(rt.participant(b).outbound.empty());
  EXPECT_EQ(rt.send(a, web)[0].port, rt.participant(c).ports[0].id);
  EXPECT_TRUE(
      rt.send(a, PacketBuilder().dst_ip("100.2.1.1").dst_port(80).build())
          .empty());

  // Coming back restores service.
  rt.announce(b, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65002, 9});
  EXPECT_FALSE(
      rt.send(a, PacketBuilder().dst_ip("100.2.1.1").dst_port(80).build())
          .empty());
}

TEST(RuntimeLifecycle, SwitchCountersAccumulateAcrossSends) {
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"));
  rt.install();
  for (int i = 0; i < 10; ++i) {
    rt.send(a, PacketBuilder().dst_ip("100.1.1.1").dst_port(80).build());
  }
  const auto& sw = rt.fabric().sdx_switch();
  EXPECT_EQ(sw.rx_packets(rt.participant(a).ports[0].id), 10u);
  EXPECT_EQ(sw.tx_packets(rt.participant(b).ports[0].id), 10u);
  EXPECT_GT(sw.table().total_matched(), 0u);
}

}  // namespace
}  // namespace sdx::core
