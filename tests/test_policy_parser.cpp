/// Tests for the policy text parser: grammar coverage, precedence, error
/// reporting, and the round-trip property parse(to_string(p)) ≡ p.

#include <gtest/gtest.h>

#include <algorithm>

#include "netbase/rng.hpp"
#include "policy/parser.hpp"

namespace sdx::policy {
namespace {

using net::Field;
using net::Ipv4Address;
using net::Ipv4Prefix;
using net::PacketBuilder;
using net::PacketHeader;

TEST(PolicyParser, Atoms) {
  EXPECT_EQ(parse_policy("drop").kind(), Policy::Kind::kDrop);
  EXPECT_EQ(parse_policy("id").kind(), Policy::Kind::kIdentity);
  EXPECT_EQ(parse_policy("identity").kind(), Policy::Kind::kIdentity);
  auto f = parse_policy("fwd(7)");
  EXPECT_EQ(f.kind(), Policy::Kind::kMod);
  EXPECT_EQ(f.mod_value(), 7u);
  auto m = parse_policy("mod(dstport:=443)");
  EXPECT_EQ(m.mod_field(), Field::kDstPort);
  EXPECT_EQ(m.mod_value(), 443u);
}

TEST(PolicyParser, ValueForms) {
  // Dotted-quad value in a mod.
  auto m = parse_policy("mod(dstip:=74.125.224.161)");
  EXPECT_EQ(m.mod_value(), Ipv4Address::parse("74.125.224.161").value());
  // MAC value.
  auto mac = parse_policy("mod(dstmac:=aa:bb:cc:00:01:ff)");
  EXPECT_EQ(mac.mod_value(), net::MacAddress::parse("aa:bb:cc:00:01:ff").bits());
  // Prefix test vs host test.
  auto pfx = parse_policy("match(srcip=96.25.160.0/24)");
  EXPECT_TRUE(pfx.eval(PacketBuilder().src_ip("96.25.160.9").build()).size());
  auto host = parse_policy("match(dstip=74.125.1.1)");
  EXPECT_EQ(host.eval(PacketBuilder().dst_ip("74.125.1.1").build()).size(),
            1u);
  EXPECT_TRUE(host.eval(PacketBuilder().dst_ip("74.125.1.2").build()).empty());
}

TEST(PolicyParser, PaperPolicyFromText) {
  auto p = parse_policy(
      "(match(dstport=80) >> fwd(10)) + (match(dstport=443) >> fwd(11))");
  auto web = PacketBuilder().dst_port(80).build();
  auto https = PacketBuilder().dst_port(443).build();
  auto other = PacketBuilder().dst_port(53).build();
  EXPECT_EQ(p.eval(web)[0].port(), 10u);
  EXPECT_EQ(p.eval(https)[0].port(), 11u);
  EXPECT_TRUE(p.eval(other).empty());
}

TEST(PolicyParser, PrecedenceSeqBindsTighterThanSum) {
  // a >> b + c must parse as (a >> b) + c.
  auto p = parse_policy("match(dstport=80) >> fwd(1) + fwd(2)");
  auto web = PacketBuilder().dst_port(80).build();
  auto out = p.eval(web);
  std::vector<net::PortId> ports;
  for (const auto& h : out) ports.push_back(h.port());
  std::sort(ports.begin(), ports.end());
  EXPECT_EQ(ports, (std::vector<net::PortId>{1, 2}));
  // Non-web traffic: only the bare fwd(2) arm applies.
  auto other = p.eval(PacketBuilder().dst_port(53).build());
  ASSERT_EQ(other.size(), 1u);
  EXPECT_EQ(other[0].port(), 2u);
}

TEST(PolicyParser, PredicateConnectivesAndNegation) {
  auto p = parse_policy(
      "match((dstport=80 | dstport=443) & !(srcip=10.0.0.0/8)) >> fwd(1)");
  EXPECT_FALSE(
      p.eval(PacketBuilder().dst_port(80).src_ip("11.0.0.1").build())
          .empty());
  EXPECT_TRUE(
      p.eval(PacketBuilder().dst_port(80).src_ip("10.1.1.1").build())
          .empty());
  EXPECT_TRUE(
      p.eval(PacketBuilder().dst_port(22).src_ip("11.0.0.1").build())
          .empty());
  EXPECT_EQ(parse_predicate("true").kind(), Predicate::Kind::kTrue);
  EXPECT_EQ(parse_predicate("false").kind(), Predicate::Kind::kFalse);
}

TEST(PolicyParser, ErrorsCarryPositions) {
  auto expect_error = [](const char* text, const char* fragment) {
    std::string error;
    EXPECT_FALSE(try_parse_policy(text, &error).has_value()) << text;
    EXPECT_NE(error.find(fragment), std::string::npos)
        << text << " -> " << error;
  };
  expect_error("", "a policy term");
  expect_error("fwd(", "a port number");
  expect_error("fwd(80", "')'");
  expect_error("mod(dstport=80)", "':='");
  expect_error("match(bogus=1)", "unknown field");
  expect_error("frobnicate", "unknown policy term");
  expect_error("match(dstport=80) @", "unexpected character");
  expect_error("fwd(1) fwd(2)", "end of input");
  expect_error("match(dstport=zzz)", "expected a value");
}

// Round trip: parse(to_string(p)) must be semantically identical to p.
class ParserRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRoundTrip, ToStringParsesBackEquivalently) {
  net::SplitMix64 rng(GetParam() * 97);
  auto random_pred = [&rng](auto&& self, int depth) -> Predicate {
    if (depth <= 0 || rng.chance(0.5)) {
      switch (rng.below(4)) {
        case 0:
          return Predicate::test(Field::kDstPort, rng.range(0, 3));
        case 1:
          return Predicate::test(
              Field::kSrcIp,
              Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(
                             rng.below(4) << 30)),
                         static_cast<int>(rng.range(1, 8))));
        case 2:
          return Predicate::test(Field::kIpProto, rng.chance(0.5) ? 6 : 17);
        default:
          return rng.chance(0.5) ? Predicate::truth() : Predicate::falsity();
      }
    }
    switch (rng.below(3)) {
      case 0:
        return self(self, depth - 1) & self(self, depth - 1);
      case 1:
        return self(self, depth - 1) | self(self, depth - 1);
      default:
        return !self(self, depth - 1);
    }
  };
  auto random_policy = [&](auto&& self, int depth) -> Policy {
    if (depth <= 0 || rng.chance(0.4)) {
      switch (rng.below(5)) {
        case 0: return drop();
        case 1: return identity();
        case 2: return fwd(static_cast<net::PortId>(rng.range(0, 3)));
        case 3: return modify(Field::kDstPort, rng.range(0, 3));
        default: return match(random_pred(random_pred, 2));
      }
    }
    return rng.chance(0.5)
               ? self(self, depth - 1) + self(self, depth - 1)
               : self(self, depth - 1) >> self(self, depth - 1);
  };

  for (int trial = 0; trial < 40; ++trial) {
    Policy original = random_policy(random_policy, 3);
    Policy reparsed = parse_policy(original.to_string());
    for (int i = 0; i < 25; ++i) {
      PacketHeader h = PacketBuilder()
                           .port(static_cast<net::PortId>(rng.range(0, 3)))
                           .src_ip(Ipv4Address(static_cast<std::uint32_t>(
                               rng.below(4) << 30)))
                           .proto(rng.chance(0.5) ? 6 : 17)
                           .dst_port(rng.range(0, 3))
                           .build();
      auto a = original.eval(h);
      auto b = reparsed.eval(h);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << original.to_string() << "\n -> "
                      << reparsed.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace sdx::policy
