/// Tests for RPKI route-origin validation (RFC 6811 semantics) and its
/// enforcement by the SDX runtime on remote-participant announcements
/// (paper §3.2).

#include <gtest/gtest.h>

#include "bgp/rpki.hpp"
#include "sdx/runtime.hpp"

namespace sdx {
namespace {

using bgp::RoaTable;
using bgp::RoaValidity;
using net::Ipv4Prefix;

TEST(RoaTableTest, EmptyTableIsAllNotFound) {
  RoaTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.validate(Ipv4Prefix::parse("10.0.0.0/8"), 65001),
            RoaValidity::kNotFound);
}

TEST(RoaTableTest, ExactMatchValid) {
  RoaTable table;
  table.add(Ipv4Prefix::parse("74.125.0.0/16"), 15169);
  EXPECT_EQ(table.validate(Ipv4Prefix::parse("74.125.0.0/16"), 15169),
            RoaValidity::kValid);
  EXPECT_EQ(table.validate(Ipv4Prefix::parse("74.125.0.0/16"), 65001),
            RoaValidity::kInvalid);
}

TEST(RoaTableTest, MaxLengthGovernsMoreSpecifics) {
  RoaTable table;
  table.add(Ipv4Prefix::parse("74.125.0.0/16"), 15169, /*max_length=*/20);
  // Within max-length: valid for the right origin.
  EXPECT_EQ(table.validate(Ipv4Prefix::parse("74.125.16.0/20"), 15169),
            RoaValidity::kValid);
  // Too specific: covered but not authorized → invalid even for the owner.
  EXPECT_EQ(table.validate(Ipv4Prefix::parse("74.125.1.0/24"), 15169),
            RoaValidity::kInvalid);
}

TEST(RoaTableTest, DefaultMaxLengthIsPrefixLength) {
  RoaTable table;
  table.add(Ipv4Prefix::parse("74.125.0.0/16"), 15169);
  EXPECT_EQ(table.validate(Ipv4Prefix::parse("74.125.1.0/24"), 15169),
            RoaValidity::kInvalid);
}

TEST(RoaTableTest, MultipleRoasForSamePrefix) {
  RoaTable table;
  table.add(Ipv4Prefix::parse("10.0.0.0/8"), 65001);
  table.add(Ipv4Prefix::parse("10.0.0.0/8"), 65002);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.validate(Ipv4Prefix::parse("10.0.0.0/8"), 65001),
            RoaValidity::kValid);
  EXPECT_EQ(table.validate(Ipv4Prefix::parse("10.0.0.0/8"), 65002),
            RoaValidity::kValid);
  EXPECT_EQ(table.validate(Ipv4Prefix::parse("10.0.0.0/8"), 65003),
            RoaValidity::kInvalid);
}

TEST(RoaTableTest, CoveringRoaFromShorterPrefix) {
  RoaTable table;
  table.add(Ipv4Prefix::parse("10.0.0.0/8"), 65001, /*max_length=*/24);
  // A /24 inside the /8 is covered and authorized.
  EXPECT_EQ(table.validate(Ipv4Prefix::parse("10.20.30.0/24"), 65001),
            RoaValidity::kValid);
  // Wrong origin under a covering ROA: invalid, not not-found.
  EXPECT_EQ(table.validate(Ipv4Prefix::parse("10.20.30.0/24"), 666),
            RoaValidity::kInvalid);
  // Outside the ROA: not found.
  EXPECT_EQ(table.validate(Ipv4Prefix::parse("11.0.0.0/24"), 65001),
            RoaValidity::kNotFound);
}

TEST(RoaTableTest, RejectsMalformedMaxLength) {
  RoaTable table;
  EXPECT_THROW(table.add(Ipv4Prefix::parse("10.0.0.0/16"), 1, 8),
               std::invalid_argument);
  EXPECT_THROW(table.add(Ipv4Prefix::parse("10.0.0.0/16"), 1, 33),
               std::invalid_argument);
}

TEST(RoaTableTest, ValidatesRoutesByOriginAs) {
  RoaTable table;
  table.add(Ipv4Prefix::parse("74.125.0.0/16"), 15169);
  bgp::Route r;
  r.prefix = Ipv4Prefix::parse("74.125.0.0/16");
  r.attrs.as_path = net::AsPath{65001, 15169};
  EXPECT_EQ(table.validate(r), RoaValidity::kValid);
  r.attrs.as_path = net::AsPath{};
  EXPECT_EQ(table.validate(r, /*fallback_origin=*/15169),
            RoaValidity::kValid);
  EXPECT_EQ(table.validate(r, /*fallback_origin=*/65009),
            RoaValidity::kInvalid);
}

TEST(RuntimeRpki, RemoteAnnouncementRequiresValidRoa) {
  core::SdxRuntime rt;
  rt.add_participant("A", 65001);
  const auto d = rt.add_remote_participant("tenant", 65010);

  bgp::RoaTable roas;
  roas.add(Ipv4Prefix::parse("198.18.0.0/24"), 65010);
  rt.enable_rpki(std::move(roas));

  // Owned prefix: accepted.
  rt.announce(d, Ipv4Prefix::parse("198.18.0.0/24"));
  // Unowned prefix: rejected before reaching the route server.
  EXPECT_THROW(rt.announce(d, Ipv4Prefix::parse("8.8.8.0/24")),
               std::invalid_argument);
  EXPECT_FALSE(
      rt.route_server().best_route(1, Ipv4Prefix::parse("8.8.8.0/24")));
}

TEST(RuntimeRpki, RemoteOnlyModeLeavesPhysicalPeersAlone) {
  core::SdxRuntime rt;
  const auto a = rt.add_participant("A", 65001);
  bgp::RoaTable roas;
  roas.add(Ipv4Prefix::parse("10.0.0.0/8"), 99999);  // someone else's space
  rt.enable_rpki(std::move(roas), core::SdxRuntime::RpkiMode::kRemoteOnly);
  // A physical peer announcing an Invalid route is tolerated in this mode
  // (the paper only gates SDX-originated routes).
  EXPECT_NO_THROW(rt.announce(a, Ipv4Prefix::parse("10.1.0.0/16")));
}

TEST(RuntimeRpki, StrictModeRejectsInvalidFromAnyone) {
  core::SdxRuntime rt;
  const auto a = rt.add_participant("A", 65001);
  bgp::RoaTable roas;
  roas.add(Ipv4Prefix::parse("10.0.0.0/8"), 99999, 16);
  rt.enable_rpki(std::move(roas), core::SdxRuntime::RpkiMode::kStrict);
  EXPECT_THROW(rt.announce(a, Ipv4Prefix::parse("10.1.0.0/16")),
               std::invalid_argument);
  // NotFound is still fine in strict mode.
  EXPECT_NO_THROW(rt.announce(a, Ipv4Prefix::parse("20.0.0.0/16")));
}

}  // namespace
}  // namespace sdx
