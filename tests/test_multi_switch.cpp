/// Tests for multi-switch SDX fabrics (§4.1 topology abstraction): the
/// translated deployment must be packet-for-packet equivalent to the
/// single-switch one, loop-free, and must only use trunks when ingress and
/// egress live on different switches.

#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "sdx/multi_switch.hpp"
#include "sdx/runtime.hpp"
#include "sdx/verifier.hpp"

namespace sdx::core {
namespace {

using net::Ipv4Prefix;
using net::PacketBuilder;
using net::PacketHeader;

TEST(FabricTopologyTest, PlacementAndTrunks) {
  FabricTopology topo(3);
  topo.place_port(1, 0);
  topo.place_port(2, 1);
  topo.add_link(0, 1001, 1, 1002);
  topo.add_link(1, 1003, 2, 1004);

  EXPECT_EQ(topo.switch_of(1), 0u);
  EXPECT_TRUE(topo.is_edge_port(2));
  EXPECT_TRUE(topo.is_trunk_port(1003));
  EXPECT_FALSE(topo.is_trunk_port(2));
  EXPECT_EQ(topo.trunk_peer(1001), (std::pair<SwitchId, net::PortId>{1, 1002}));

  // Next hops along the line 0–1–2.
  EXPECT_EQ(topo.next_hop_trunk(0, 1), 1001u);
  EXPECT_EQ(topo.next_hop_trunk(0, 2), 1001u);
  EXPECT_EQ(topo.next_hop_trunk(2, 0), 1004u);
}

TEST(FabricTopologyTest, RejectsBadConfiguration) {
  FabricTopology topo(2);
  EXPECT_THROW(FabricTopology(0), std::invalid_argument);
  topo.place_port(1, 0);
  EXPECT_THROW(topo.place_port(2, 9), std::out_of_range);
  EXPECT_THROW(topo.add_link(0, 1, 1, 1002), std::invalid_argument);  // edge reused
  EXPECT_THROW(topo.add_link(0, 1001, 0, 1002), std::invalid_argument);
  topo.add_link(0, 1001, 1, 1002);
  EXPECT_THROW(topo.add_link(0, 1001, 1, 1003), std::invalid_argument);
  EXPECT_THROW(topo.switch_of(99), std::out_of_range);
}

TEST(FabricTopologyTest, DisconnectedGraphIsAnError) {
  FabricTopology topo(2);
  topo.place_port(1, 0);
  topo.place_port(2, 1);
  EXPECT_THROW(topo.next_hop_trunk(0, 1), std::logic_error);
}

/// Builds the Figure-1 runtime and exercises a topology against the
/// single-switch deployment.
class MultiSwitchEquivalence : public ::testing::Test {
 protected:
  MultiSwitchEquivalence() {
    a = rt.add_participant("A", 65001);
    b = rt.add_participant("B", 65002, 2);
    c = rt.add_participant("C", 65003);
    rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b},
                        OutboundClause{ClauseMatch{}.dst_port(443), c}});
    rt.set_inbound(
        b, {InboundClause{ClauseMatch{}.src(Ipv4Prefix::parse("0.0.0.0/1")),
                          {},
                          0},
            InboundClause{
                ClauseMatch{}.src(Ipv4Prefix::parse("128.0.0.0/1")),
                {},
                1}});
    rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"),
                net::AsPath{65002, 900, 10});
    rt.announce(b, Ipv4Prefix::parse("100.3.0.0/16"), net::AsPath{65002, 30});
    rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003, 10});
    rt.announce(c, Ipv4Prefix::parse("100.4.0.0/16"), net::AsPath{65003, 40});
    rt.install();
  }

  /// Random scenario traffic as router-tagged frames.
  std::optional<PacketHeader> frame(bgp::ParticipantId sender,
                                    const PacketHeader& payload) {
    return rt.router(sender).forward(payload, rt.fabric().arp());
  }

  void check_equivalence(const FabricTopology& topo) {
    auto programs = compile_multi_switch(rt.compiled(), rt.participants(),
                                         topo);
    auto program_audit =
        audit_multi_switch(programs, topo, rt.participants());
    ASSERT_TRUE(program_audit.ok()) << program_audit.to_string();
    MultiSwitchFabric fabric(topo, programs);
    net::SplitMix64 rng(77);
    std::vector<bgp::ParticipantId> senders{a, b, c};
    int compared = 0;
    for (int i = 0; i < 300; ++i) {
      const auto sender = senders[rng.below(senders.size())];
      auto payload =
          PacketBuilder()
              .src_ip(net::Ipv4Address(static_cast<std::uint32_t>(rng())))
              .dst_ip(net::Ipv4Address(
                  (100u << 24) |
                  ((1u + static_cast<std::uint32_t>(rng.below(5))) << 16) |
                  0x0101))
              .proto(net::kProtoTcp)
              .dst_port(rng.chance(0.4) ? 80 : (rng.chance(0.4) ? 443 : 53))
              .build();
      auto f = frame(sender, payload);
      // Single-switch reference.
      auto single = rt.fabric().inject(f ? *f : payload);
      if (!f) continue;
      auto multi = fabric.inject(*f);
      ASSERT_EQ(multi.size(), single.size()) << payload.to_string();
      if (!single.empty()) {
        EXPECT_EQ(multi[0].port(), single[0].port) << payload.to_string();
        EXPECT_EQ(multi[0], single[0].frame) << payload.to_string();
        ++compared;
      }
    }
    EXPECT_GT(compared, 100);
  }

  SdxRuntime rt;
  bgp::ParticipantId a = 0, b = 0, c = 0;
};

TEST_F(MultiSwitchEquivalence, SingleSwitchTopologyIsIdentity) {
  FabricTopology topo(1);
  for (const auto& p : rt.participants()) {
    for (auto port : p.port_ids()) topo.place_port(port, 0);
  }
  check_equivalence(topo);
}

TEST_F(MultiSwitchEquivalence, TwoSwitchSplit) {
  FabricTopology topo(2);
  // A on switch 0; B and C on switch 1.
  topo.place_port(rt.participant(a).ports[0].id, 0);
  topo.place_port(rt.participant(b).ports[0].id, 1);
  topo.place_port(rt.participant(b).ports[1].id, 1);
  topo.place_port(rt.participant(c).ports[0].id, 1);
  topo.add_link(0, 1001, 1, 1002);
  check_equivalence(topo);
}

TEST_F(MultiSwitchEquivalence, ThreeSwitchLineUsesTrunks) {
  FabricTopology topo(3);
  topo.place_port(rt.participant(a).ports[0].id, 0);
  topo.place_port(rt.participant(b).ports[0].id, 1);
  topo.place_port(rt.participant(b).ports[1].id, 1);
  topo.place_port(rt.participant(c).ports[0].id, 2);
  topo.add_link(0, 1001, 1, 1002);
  topo.add_link(1, 1003, 2, 1004);

  auto programs =
      compile_multi_switch(rt.compiled(), rt.participants(), topo);
  MultiSwitchFabric fabric(topo, programs);

  // A → C crosses two trunks (switch 0 → 1 → 2).
  auto payload = PacketBuilder()
                     .src_ip("96.25.160.5")
                     .dst_ip("100.4.1.1")
                     .proto(net::kProtoTcp)
                     .dst_port(443)
                     .build();
  auto f = rt.router(a).forward(payload, rt.fabric().arp());
  ASSERT_TRUE(f.has_value());
  auto delivered = fabric.inject(*f);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].port(), rt.participant(c).ports[0].id);
  EXPECT_EQ(fabric.trunk_hops(), 2u);

  check_equivalence(topo);
}

TEST_F(MultiSwitchEquivalence, LinkFailureReroutesAfterRecompilation) {
  // Triangle topology: 0–1, 1–2, 0–2. Kill the direct 0–2 link; traffic
  // from A (switch 0) to C (switch 2) must reroute via switch 1.
  FabricTopology topo(3);
  topo.place_port(rt.participant(a).ports[0].id, 0);
  topo.place_port(rt.participant(b).ports[0].id, 1);
  topo.place_port(rt.participant(b).ports[1].id, 1);
  topo.place_port(rt.participant(c).ports[0].id, 2);
  topo.add_link(0, 1001, 1, 1002);
  topo.add_link(1, 1003, 2, 1004);
  topo.add_link(0, 1005, 2, 1006);

  auto send_ac = [this](MultiSwitchFabric& fabric) {
    auto payload = PacketBuilder()
                       .src_ip("96.25.160.5")
                       .dst_ip("100.4.1.1")
                       .proto(net::kProtoTcp)
                       .dst_port(443)
                       .build();
    auto f = rt.router(a).forward(payload, rt.fabric().arp());
    EXPECT_TRUE(f.has_value());
    return fabric.inject(*f);
  };

  {
    auto programs =
        compile_multi_switch(rt.compiled(), rt.participants(), topo);
    MultiSwitchFabric fabric(topo, programs);
    auto delivered = send_ac(fabric);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(fabric.trunk_hops(), 1u);  // direct 0→2 link
  }

  ASSERT_TRUE(topo.remove_link(1005));
  EXPECT_FALSE(topo.remove_link(1005));  // already gone
  {
    auto programs =
        compile_multi_switch(rt.compiled(), rt.participants(), topo);
    auto report = audit_multi_switch(programs, topo, rt.participants());
    ASSERT_TRUE(report.ok()) << report.to_string();
    MultiSwitchFabric fabric(topo, programs);
    auto delivered = send_ac(fabric);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].port(), rt.participant(c).ports[0].id);
    EXPECT_EQ(fabric.trunk_hops(), 2u);  // rerouted 0→1→2
    check_equivalence(topo);
  }

  // Losing the remaining path to switch 2 disconnects the graph: the
  // recompilation must refuse rather than blackhole silently.
  ASSERT_TRUE(topo.remove_link(1003));
  EXPECT_THROW(
      compile_multi_switch(rt.compiled(), rt.participants(), topo),
      std::logic_error);
}

TEST_F(MultiSwitchEquivalence, ProgramAuditCatchesCorruption) {
  FabricTopology topo(2);
  topo.place_port(rt.participant(a).ports[0].id, 0);
  topo.place_port(rt.participant(b).ports[0].id, 1);
  topo.place_port(rt.participant(b).ports[1].id, 1);
  topo.place_port(rt.participant(c).ports[0].id, 1);
  topo.add_link(0, 1001, 1, 1002);
  auto programs =
      compile_multi_switch(rt.compiled(), rt.participants(), topo);
  ASSERT_TRUE(audit_multi_switch(programs, topo, rt.participants()).ok());

  // Corrupt: a rule on switch 0 outputting to a port on switch 1.
  policy::Rule bad;
  bad.match = net::FlowMatch::on(net::Field::kDstPort, 9999);
  bad.actions = {policy::ActionSeq::set(net::Field::kPort,
                                        rt.participant(b).ports[0].id)};
  programs[0].rules.rules().insert(programs[0].rules.rules().begin(), bad);
  auto report = audit_multi_switch(programs, topo, rt.participants());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].what.find("non-local port"),
            std::string::npos);
}

TEST_F(MultiSwitchEquivalence, SameSwitchTrafficStaysLocal) {
  FabricTopology topo(2);
  topo.place_port(rt.participant(a).ports[0].id, 0);
  topo.place_port(rt.participant(b).ports[0].id, 1);
  topo.place_port(rt.participant(b).ports[1].id, 1);
  topo.place_port(rt.participant(c).ports[0].id, 0);  // C with A
  topo.add_link(0, 1001, 1, 1002);

  auto programs =
      compile_multi_switch(rt.compiled(), rt.participants(), topo);
  MultiSwitchFabric fabric(topo, programs);
  // A → C (default HTTPS prefix via C) never leaves switch 0.
  auto payload = PacketBuilder()
                     .src_ip("96.25.160.5")
                     .dst_ip("100.4.1.1")
                     .proto(net::kProtoTcp)
                     .dst_port(53)
                     .build();
  auto f = rt.router(a).forward(payload, rt.fabric().arp());
  ASSERT_TRUE(f.has_value());
  auto delivered = fabric.inject(*f);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(fabric.trunk_hops(), 0u);
  check_equivalence(topo);
}

}  // namespace
}  // namespace sdx::core
