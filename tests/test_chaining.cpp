/// Tests for service chaining (paper §8): traffic classes steered through
/// ordered middlebox sequences, each hop BGP-consistent, with unrelated
/// traffic untouched.

#include <gtest/gtest.h>

#include "sdx/chaining.hpp"
#include "sdx/verifier.hpp"

namespace sdx::core {
namespace {

using net::Ipv4Prefix;
using net::PacketBuilder;

class ChainFixture : public ::testing::Test {
 protected:
  ChainFixture() : dst_net(Ipv4Prefix::parse("203.0.113.0/24")) {
    s = rt.add_participant("source", 65001);
    m1 = rt.add_participant("scrubber", 65002);
    m2 = rt.add_participant("transcoder", 65003);
    d = rt.add_participant("destination", 65004);
    rt.announce(d, dst_net, net::AsPath{65004});
    rt.announce(s, Ipv4Prefix::parse("10.10.0.0/16"), net::AsPath{65001});
  }

  net::PacketHeader web(const char* src) {
    return PacketBuilder()
        .src_ip(src)
        .dst_ip("203.0.113.50")
        .proto(net::kProtoTcp)
        .dst_port(80)
        .build();
  }

  net::PortId egress(bgp::ParticipantId from, const net::PacketHeader& h) {
    auto deliveries = rt.send(from, h);
    return deliveries.empty() ? 0 : deliveries[0].port;
  }

  SdxRuntime rt;
  bgp::ParticipantId s = 0, m1 = 0, m2 = 0, d = 0;
  Ipv4Prefix dst_net;
};

TEST_F(ChainFixture, TwoHopChainSteersEachSegment) {
  ServiceChain chain;
  chain.owner = s;
  chain.match.dst_port(80).dst(dst_net);
  chain.middleboxes = {m1, m2};
  install_chain(rt, chain);
  rt.install();

  // Segment 1: source → scrubber.
  EXPECT_EQ(egress(s, web("10.10.0.5")),
            rt.participant(m1).primary_port().id);
  // Segment 2: scrubber re-injects → transcoder.
  EXPECT_EQ(egress(m1, web("10.10.0.5")),
            rt.participant(m2).primary_port().id);
  // Segment 3: transcoder re-injects → BGP default → destination.
  EXPECT_EQ(egress(m2, web("10.10.0.5")),
            rt.participant(d).primary_port().id);
}

TEST_F(ChainFixture, NonMatchingTrafficBypassesTheChain) {
  ServiceChain chain;
  chain.owner = s;
  chain.match.dst_port(80).dst(dst_net);
  chain.middleboxes = {m1, m2};
  install_chain(rt, chain);
  rt.install();

  auto ssh = PacketBuilder()
                 .src_ip("10.10.0.5")
                 .dst_ip("203.0.113.50")
                 .proto(net::kProtoTcp)
                 .dst_port(22)
                 .build();
  EXPECT_EQ(egress(s, ssh), rt.participant(d).primary_port().id);
}

TEST_F(ChainFixture, ChainAnnouncementsMakeHopsBgpConsistent) {
  ServiceChain chain;
  chain.owner = s;
  chain.match.dst_port(80).dst(dst_net);
  chain.middleboxes = {m1, m2};
  install_chain(rt, chain);

  // Each chain element now exports the destination prefix to its upstream.
  auto p = dst_net;
  EXPECT_TRUE(rt.route_server().exports_to(m1, s, p));
  EXPECT_TRUE(rt.route_server().exports_to(m2, m1, p));
  EXPECT_TRUE(rt.route_server().exports_to(d, m2, p));

  // The compiled fabric still passes the full audit.
  rt.install();
  auto report = audit(rt.compiled(), rt.participants(), rt.ports(),
                      rt.route_server());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(ChainFixture, SingleMiddleboxChain) {
  ServiceChain chain;
  chain.owner = s;
  chain.match.dst(dst_net);
  chain.middleboxes = {m1};
  install_chain(rt, chain);
  rt.install();
  EXPECT_EQ(egress(s, web("10.10.0.5")),
            rt.participant(m1).primary_port().id);
  EXPECT_EQ(egress(m1, web("10.10.0.5")),
            rt.participant(d).primary_port().id);
}

TEST_F(ChainFixture, ValidationRejectsMalformedChains) {
  ServiceChain empty;
  empty.owner = s;
  empty.match.dst(dst_net);
  EXPECT_THROW(install_chain(rt, empty), std::invalid_argument);

  ServiceChain no_dst;
  no_dst.owner = s;
  no_dst.match.dst_port(80);
  no_dst.middleboxes = {m1};
  EXPECT_THROW(install_chain(rt, no_dst), std::invalid_argument);

  ServiceChain repeated;
  repeated.owner = s;
  repeated.match.dst(dst_net);
  repeated.middleboxes = {m1, m1};
  EXPECT_THROW(install_chain(rt, repeated), std::invalid_argument);

  ServiceChain through_owner;
  through_owner.owner = s;
  through_owner.match.dst(dst_net);
  through_owner.middleboxes = {s};
  EXPECT_THROW(install_chain(rt, through_owner), std::invalid_argument);
}

TEST_F(ChainFixture, WithdrawnDestinationDisablesTheChainSafely) {
  ServiceChain chain;
  chain.owner = s;
  chain.match.dst_port(80).dst(dst_net);
  chain.middleboxes = {m1};
  install_chain(rt, chain);
  rt.install();
  ASSERT_EQ(egress(s, web("10.10.0.5")),
            rt.participant(m1).primary_port().id);

  // The destination withdraws; the middlebox withdraws its re-announcement
  // too. Traffic must not be steered into a black hole.
  rt.withdraw(d, dst_net);
  rt.withdraw(m1, dst_net);
  EXPECT_EQ(egress(s, web("10.10.0.5")), 0u);  // dropped at the source FIB
}

}  // namespace
}  // namespace sdx::core
