/// SDX core tests: port map, VNH allocation, FEC/MDS (against the paper's
/// worked example), the optimized compiler end to end on the Figure-1
/// scenario, BGP-consistency and isolation invariants, and incremental
/// updates (fast path ≡ full recompilation).

#include <gtest/gtest.h>

#include <algorithm>

#include "netbase/rng.hpp"
#include "sdx/compiler.hpp"
#include "sdx/fec.hpp"
#include "sdx/oracle.hpp"
#include "sdx/port_map.hpp"
#include "sdx/runtime.hpp"
#include "sdx/vnh_allocator.hpp"

namespace sdx::core {
namespace {

using net::Field;
using net::Ipv4Address;
using net::Ipv4Prefix;
using net::PacketBuilder;
using net::PacketHeader;

// ---------------------------------------------------------------------------
// PortMap

TEST(PortMapTest, RegistersAndResolves) {
  PortMap pm;
  pm.register_participant(1, {10, 11});
  pm.register_participant(2, {20});
  EXPECT_TRUE(PortMap::is_virtual(pm.vport(1)));
  EXPECT_NE(pm.vport(1), pm.vport(2));
  EXPECT_EQ(pm.vport_owner(pm.vport(2)), 2u);
  EXPECT_EQ(pm.phys_owner(11), 1u);
  EXPECT_EQ(pm.phys_ports(1).size(), 2u);
  EXPECT_TRUE(pm.phys_ports(2).size() == 1 && pm.phys_ports(2)[0] == 20);
}

TEST(PortMapTest, RejectsDuplicatesAndBadIds) {
  PortMap pm;
  pm.register_participant(1, {10});
  EXPECT_THROW(pm.register_participant(1, {11}), std::invalid_argument);
  EXPECT_THROW(pm.register_participant(2, {10}), std::invalid_argument);
  EXPECT_THROW(pm.register_participant(3, {PortMap::kVirtualBase}),
               std::invalid_argument);
  EXPECT_THROW(pm.vport(9), std::out_of_range);
  EXPECT_THROW(pm.phys_owner(99), std::out_of_range);
}

// ---------------------------------------------------------------------------
// VnhAllocator

TEST(VnhAllocatorTest, AllocatesDistinctLocallyAdministeredPairs) {
  VnhAllocator alloc;
  auto a = alloc.allocate();
  auto b = alloc.allocate();
  EXPECT_NE(a.vnh, b.vnh);
  EXPECT_NE(a.vmac, b.vmac);
  EXPECT_TRUE(a.vmac.locally_administered());
  EXPECT_TRUE(alloc.pool().contains(a.vnh));
  EXPECT_EQ(alloc.allocated(), 2u);
  alloc.reset();
  EXPECT_EQ(alloc.allocate(), a);  // deterministic after reset
}

TEST(VnhAllocatorTest, ExhaustsSmallPool) {
  VnhAllocator alloc(Ipv4Prefix::parse("10.0.0.0/30"));
  for (int i = 0; i < 4; ++i) alloc.allocate();
  EXPECT_THROW(alloc.allocate(), std::length_error);
}

// ---------------------------------------------------------------------------
// FEC / minimum disjoint subsets — the paper's §4.2 worked example.

TEST(FecTest, PaperWorkedExample) {
  const auto p1 = Ipv4Prefix::parse("100.1.0.0/16");
  const auto p2 = Ipv4Prefix::parse("100.2.0.0/16");
  const auto p3 = Ipv4Prefix::parse("100.3.0.0/16");
  const auto p4 = Ipv4Prefix::parse("100.4.0.0/16");

  // Pass-1 groups: {p1,p2,p3} (A's web policy via B) and {p1,p2,p3,p4}
  // (A's HTTPS policy via C).
  std::vector<ClauseReach> clauses(2);
  clauses[0].prefixes = {p1, p2, p3};
  clauses[1].prefixes = {p1, p2, p3, p4};

  // Pass-2 defaults: p1,p2,p4 default to C (id 3); p3 defaults to B (id 2).
  auto defaults = [&](Ipv4Prefix p) {
    DefaultVector d(1);
    d[0] = (p == p3) ? 2u : 3u;
    return d;
  };

  auto result = compute_fecs(clauses, defaults);
  // C' = {{p1,p2},{p3},{p4}} — "the only valid solution".
  ASSERT_EQ(result.group_count(), 3u);
  EXPECT_EQ(result.group_of.at(p1), result.group_of.at(p2));
  EXPECT_NE(result.group_of.at(p1), result.group_of.at(p3));
  EXPECT_NE(result.group_of.at(p1), result.group_of.at(p4));
  EXPECT_NE(result.group_of.at(p3), result.group_of.at(p4));

  const auto& g12 = result.groups[result.group_of.at(p1)];
  EXPECT_EQ(g12.prefixes, (std::vector<Ipv4Prefix>{p1, p2}));
  EXPECT_EQ(g12.clauses, (std::vector<std::uint32_t>{0, 1}));
  const auto& g4 = result.groups[result.group_of.at(p4)];
  EXPECT_EQ(g4.clauses, (std::vector<std::uint32_t>{1}));
}

TEST(FecTest, UntouchedPrefixesAreNotGrouped) {
  std::vector<ClauseReach> clauses(1);
  clauses[0].prefixes = {Ipv4Prefix::parse("10.0.0.0/8")};
  auto result = compute_fecs(clauses, [](Ipv4Prefix) {
    return DefaultVector{};
  });
  EXPECT_EQ(result.group_count(), 1u);
  EXPECT_FALSE(result.group_of.contains(Ipv4Prefix::parse("20.0.0.0/8")));
}

TEST(FecTest, EmptyInput) {
  auto result =
      compute_fecs({}, [](Ipv4Prefix) { return DefaultVector{}; });
  EXPECT_EQ(result.group_count(), 0u);
}

TEST(FecTest, DifferentDefaultsSplitGroups) {
  const auto p1 = Ipv4Prefix::parse("1.0.0.0/8");
  const auto p2 = Ipv4Prefix::parse("2.0.0.0/8");
  std::vector<ClauseReach> clauses(1);
  clauses[0].prefixes = {p1, p2};
  auto result = compute_fecs(clauses, [&](Ipv4Prefix p) {
    DefaultVector d(2);
    d[0] = 7u;
    d[1] = (p == p1) ? std::optional<ParticipantId>(8u) : std::nullopt;
    return d;
  });
  EXPECT_EQ(result.group_count(), 2u);
}

// ---------------------------------------------------------------------------
// ClauseMatch

TEST(ClauseMatchTest, PredicateAndDirectMatchAgree) {
  ClauseMatch m;
  m.dst_port(80).src(Ipv4Prefix::parse("96.0.0.0/8"));
  auto hit = PacketBuilder().dst_port(80).src_ip("96.1.2.3").build();
  auto miss = PacketBuilder().dst_port(80).src_ip("97.1.2.3").build();
  EXPECT_TRUE(m.matches(hit));
  EXPECT_FALSE(m.matches(miss));
  EXPECT_EQ(m.to_predicate().eval(hit), m.matches(hit));
  EXPECT_EQ(m.to_predicate().eval(miss), m.matches(miss));
}

// ---------------------------------------------------------------------------
// Figure 1 end-to-end fixture.

class Figure1 : public ::testing::Test {
 protected:
  Figure1()
      : p1(Ipv4Prefix::parse("100.1.0.0/16")),
        p2(Ipv4Prefix::parse("100.2.0.0/16")),
        p3(Ipv4Prefix::parse("100.3.0.0/16")),
        p4(Ipv4Prefix::parse("100.4.0.0/16")),
        p5(Ipv4Prefix::parse("100.5.0.0/16")) {
    a = rt.add_participant("A", 65001);
    b = rt.add_participant("B", 65002, /*port_count=*/2);
    c = rt.add_participant("C", 65003);

    // A: application-specific peering (web via B, HTTPS via C).
    rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b},
                        OutboundClause{ClauseMatch{}.dst_port(443), c}});
    // B: inbound traffic engineering on the source half-spaces.
    rt.set_inbound(
        b, {InboundClause{ClauseMatch{}.src(Ipv4Prefix::parse("0.0.0.0/1")),
                          {},
                          0},
            InboundClause{
                ClauseMatch{}.src(Ipv4Prefix::parse("128.0.0.0/1")),
                {},
                1}});

    // Announcements shaped so A's best routes are p1,p2,p4 → C and p3 → B.
    rt.announce(b, p1, net::AsPath{65002, 900, 800, 10});
    rt.announce(b, p2, net::AsPath{65002, 900, 800, 20});
    rt.announce(b, p3, net::AsPath{65002, 30});
    rt.announce(c, p1, net::AsPath{65003, 10});
    rt.announce(c, p2, net::AsPath{65003, 20});
    rt.announce(c, p3, net::AsPath{65003, 700, 600, 30});
    rt.announce(c, p4, net::AsPath{65003, 40});
    rt.announce(a, p5, net::AsPath{65001, 50});
  }

  PacketHeader packet(const char* src, Ipv4Prefix dst_block,
                      std::uint64_t dst_port) {
    return PacketBuilder()
        .src_ip(src)
        .dst_ip(Ipv4Address(dst_block.network().value() + 0x0101))
        .proto(net::kProtoTcp)
        .dst_port(dst_port)
        .build();
  }

  /// The single delivery's egress port, or 0 when dropped.
  net::PortId egress_of(ParticipantId from, const PacketHeader& h) {
    auto deliveries = rt.send(from, h);
    if (deliveries.empty()) return 0;
    EXPECT_EQ(deliveries.size(), 1u) << "unexpected multicast";
    EXPECT_TRUE(deliveries[0].accepted)
        << "receiver would drop: " << deliveries[0].frame.to_string();
    return deliveries[0].port;
  }

  SdxRuntime rt;
  ParticipantId a = 0, b = 0, c = 0;
  Ipv4Prefix p1, p2, p3, p4, p5;
};

TEST_F(Figure1, CompilerReproducesPaperPrefixGroups) {
  const auto& compiled = rt.install();
  EXPECT_EQ(compiled.stats.prefix_groups, 3u);
  const auto& g = compiled.fecs.group_of;
  EXPECT_EQ(g.at(p1), g.at(p2));
  EXPECT_NE(g.at(p1), g.at(p3));
  EXPECT_NE(g.at(p1), g.at(p4));
  EXPECT_FALSE(g.contains(p5));  // untouched prefix: no VNH processing
}

TEST_F(Figure1, ClauseReachRespectsBgpExports) {
  SdxCompiler compiler(rt.participants(), rt.ports(), rt.route_server());
  const auto& A = rt.participant(a);
  auto web_reach = compiler.clause_reach(A, A.outbound[0]);
  EXPECT_EQ(web_reach, (std::vector<Ipv4Prefix>{p1, p2, p3}));
  auto https_reach = compiler.clause_reach(A, A.outbound[1]);
  EXPECT_EQ(https_reach, (std::vector<Ipv4Prefix>{p1, p2, p3, p4}));
}

TEST_F(Figure1, WebTrafficDivertsToBWithInboundTe) {
  rt.install();
  // Low source half → B's first port; high half → B's second port.
  const net::PortId b1 = rt.participant(b).ports[0].id;
  const net::PortId b2 = rt.participant(b).ports[1].id;
  EXPECT_EQ(egress_of(a, packet("96.25.160.5", p1, 80)), b1);
  EXPECT_EQ(egress_of(a, packet("200.1.1.1", p1, 80)), b2);
  // The paper's key subtlety: A's best route for p1 is C, yet web traffic
  // flows through B because B exported a route for p1.
}

TEST_F(Figure1, HttpsFollowsPolicyToC) {
  rt.install();
  const net::PortId c1 = rt.participant(c).ports[0].id;
  EXPECT_EQ(egress_of(a, packet("96.25.160.5", p2, 443)), c1);
}

TEST_F(Figure1, NonPolicyTrafficFollowsBgpDefault) {
  rt.install();
  const net::PortId b1 = rt.participant(b).ports[0].id;
  const net::PortId c1 = rt.participant(c).ports[0].id;
  // DNS to p1 defaults to C (A's best route).
  EXPECT_EQ(egress_of(a, packet("96.25.160.5", p1, 53)), c1);
  // DNS to p3 defaults to B — and B's inbound TE still applies.
  EXPECT_EQ(egress_of(a, packet("96.25.160.5", p3, 53)), b1);
}

TEST_F(Figure1, PolicyNeverOverridesMissingExport) {
  rt.install();
  const net::PortId c1 = rt.participant(c).ports[0].id;
  // B did not export p4, so A's web policy must not divert it ("the SDX
  // should not direct traffic to a next-hop AS that does not want it").
  EXPECT_EQ(egress_of(a, packet("96.25.160.5", p4, 80)), c1);
}

TEST_F(Figure1, UntouchedPrefixUsesMacLearningPath) {
  rt.install();
  const net::PortId a1 = rt.participant(a).ports[0].id;
  // p5 is announced by A and touched by no policy: traffic from B and C
  // reaches A through the plain MAC-learning default.
  EXPECT_EQ(egress_of(b, packet("1.2.3.4", p5, 80)), a1);
  EXPECT_EQ(egress_of(c, packet("1.2.3.4", p5, 9999)), a1);
}

TEST_F(Figure1, SenderWithoutRouteBlackholes) {
  rt.install();
  // A announced p5 itself; the route server gives A nothing back for it.
  EXPECT_TRUE(rt.send(a, packet("1.2.3.4", p5, 80)).empty());
  EXPECT_GT(rt.router(a).blackholed(), 0u);
}

TEST_F(Figure1, EgressFramesCarryRealRouterMacs) {
  rt.install();
  auto deliveries = rt.send(a, packet("96.25.160.5", p1, 80));
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].frame.dst_mac(),
            rt.participant(b).ports[0].router_mac);
  // The VMAC tag must not leak to the receiving router.
  EXPECT_FALSE(deliveries[0].frame.dst_mac().locally_administered());
}

TEST_F(Figure1, WithdrawalResynchronizesDataPlane) {
  rt.install();
  const net::PortId b1 = rt.participant(b).ports[0].id;
  const net::PortId c1 = rt.participant(c).ports[0].id;
  EXPECT_EQ(egress_of(a, packet("96.25.160.5", p3, 80)), b1);

  // B withdraws p3 (the Fig. 5a event): web traffic must shift to C —
  // the policy can no longer use B, and the default flips to C too.
  rt.withdraw(b, p3);
  EXPECT_EQ(egress_of(a, packet("96.25.160.5", p3, 80)), c1);
  EXPECT_EQ(egress_of(a, packet("96.25.160.5", p3, 53)), c1);
  ASSERT_FALSE(rt.update_log().empty());

  // Background recompilation must not change behaviour.
  rt.background_recompile();
  EXPECT_EQ(egress_of(a, packet("96.25.160.5", p3, 80)), c1);
}

TEST_F(Figure1, ReAnnouncementRestoresPolicyPath) {
  rt.install();
  const net::PortId b1 = rt.participant(b).ports[0].id;
  rt.withdraw(b, p3);
  rt.announce(b, p3, net::AsPath{65002, 30});
  EXPECT_EQ(egress_of(a, packet("96.25.160.5", p3, 80)), b1);
}

TEST_F(Figure1, FastPathInstallsAdditionalRules) {
  rt.install();
  const std::size_t base_rules = rt.fabric().sdx_switch().table().size();
  rt.clear_update_log();
  rt.announce(c, Ipv4Prefix::parse("100.6.0.0/16"), net::AsPath{65003, 60});
  ASSERT_EQ(rt.update_log().size(), 1u);
  EXPECT_GT(rt.update_log()[0].additional_rules, 0u);
  EXPECT_GT(rt.fabric().sdx_switch().table().size(), base_rules);
  // Background pass coalesces back to a minimal table.
  rt.background_recompile();
  auto& table = rt.fabric().sdx_switch().table();
  EXPECT_EQ(table.size(), rt.compiled().fabric.size());
}

TEST_F(Figure1, IsolationParticipantsCannotAffectOthersTraffic) {
  // C installs a policy trying to steer web traffic to itself; it must only
  // affect traffic C sends, not A's.
  rt.set_outbound(c, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
  rt.install();
  const net::PortId b1 = rt.participant(b).ports[0].id;
  EXPECT_EQ(egress_of(a, packet("96.25.160.5", p1, 80)), b1);
  // A's HTTPS still goes to C, untouched by C's clause.
  const net::PortId c1 = rt.participant(c).ports[0].id;
  EXPECT_EQ(egress_of(a, packet("96.25.160.5", p1, 443)), c1);
}

TEST_F(Figure1, ValidationRejectsBadClauses) {
  EXPECT_THROW(
      rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), a}}),
      std::invalid_argument);
  EXPECT_THROW(
      rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), 99}}),
      std::invalid_argument);
  EXPECT_THROW(
      rt.set_inbound(b, {InboundClause{ClauseMatch{}, {}, 7}}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Wide-area load balancing (Figure 4b) with a remote participant.

class WideAreaLb : public ::testing::Test {
 protected:
  WideAreaLb()
      : aws16(Ipv4Prefix::parse("74.125.0.0/16")),
        anycast(Ipv4Address::parse("74.125.1.1")),
        instance1(Ipv4Address::parse("74.125.224.161")),
        instance2(Ipv4Address::parse("74.125.137.139")) {
    a = rt.add_participant("A", 65001);
    b = rt.add_participant("B", 65002);
    d = rt.add_remote_participant("AWS-tenant", 65010);

    rt.announce(b, aws16, net::AsPath{65002, 16509});
    rt.announce(a, Ipv4Prefix::parse("204.57.0.0/16"),
                net::AsPath{65001});

    // The tenant rewrites anycast requests per client block (paper §3.1).
    rt.set_inbound(
        d,
        {InboundClause{ClauseMatch{}
                           .dst(Ipv4Prefix::host(anycast))
                           .src(Ipv4Prefix::parse("96.25.160.0/24")),
                       {{Field::kDstIp, instance1.value()}},
                       std::nullopt},
         InboundClause{ClauseMatch{}
                           .dst(Ipv4Prefix::host(anycast))
                           .src(Ipv4Prefix::parse("204.57.0.0/16")),
                       {{Field::kDstIp, instance2.value()}},
                       std::nullopt}});
    rt.install();
  }

  SdxRuntime rt;
  ParticipantId a = 0, b = 0, d = 0;
  Ipv4Prefix aws16;
  Ipv4Address anycast, instance1, instance2;
};

TEST_F(WideAreaLb, RewritesByClientBlockAndExitsViaCoveringRoute) {
  auto request = PacketBuilder()
                     .src_ip("96.25.160.7")
                     .dst_ip(anycast)
                     .proto(net::kProtoTcp)
                     .dst_port(80)
                     .build();
  auto deliveries = rt.send(a, request);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].port, rt.participant(b).ports[0].id);
  EXPECT_EQ(deliveries[0].frame.dst_ip(), instance1);
  EXPECT_TRUE(deliveries[0].accepted);

  auto request2 = PacketBuilder()
                      .src_ip("204.57.0.67")
                      .dst_ip(anycast)
                      .proto(net::kProtoTcp)
                      .dst_port(80)
                      .build();
  auto d2 = rt.send(a, request2);
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2[0].frame.dst_ip(), instance2);
}

TEST_F(WideAreaLb, NonMatchingClientsPassThroughUnchanged) {
  auto request = PacketBuilder()
                     .src_ip("8.8.8.8")
                     .dst_ip(anycast)
                     .proto(net::kProtoTcp)
                     .dst_port(80)
                     .build();
  auto deliveries = rt.send(a, request);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].frame.dst_ip(), anycast);  // no rewrite
  EXPECT_EQ(deliveries[0].port, rt.participant(b).ports[0].id);
}

TEST_F(WideAreaLb, RemoteAnnouncementAttractsTraffic) {
  // The tenant originates a standalone anycast block at the SDX.
  const auto standalone = Ipv4Prefix::parse("198.18.0.0/24");
  const auto target = Ipv4Address::parse("198.18.0.1");
  rt.set_inbound(
      d, {InboundClause{ClauseMatch{}.dst(standalone),
                        {{Field::kDstIp, instance1.value()}},
                        std::nullopt}});
  rt.announce(d, standalone, net::AsPath{65010});
  rt.background_recompile();
  auto request =
      PacketBuilder().src_ip("1.1.1.1").dst_ip(target).dst_port(80).build();
  auto deliveries = rt.send(a, request);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].frame.dst_ip(), instance1);
  EXPECT_EQ(deliveries[0].port, rt.participant(b).ports[0].id);
}

// ---------------------------------------------------------------------------
// Compiled fabric vs oracle, randomized.

class FabricVsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricVsOracle, EndToEndBehaviourMatchesSpec) {
  net::SplitMix64 rng(GetParam());
  SdxRuntime rt;
  const int n = static_cast<int>(rng.range(3, 6));
  std::vector<ParticipantId> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(rt.add_participant("P" + std::to_string(i),
                                     65000 + static_cast<net::Asn>(i),
                                     rng.chance(0.3) ? 2 : 1));
  }
  // Random announcements over a small prefix universe.
  std::vector<Ipv4Prefix> universe;
  for (int i = 0; i < 8; ++i) {
    universe.push_back(Ipv4Prefix(
        Ipv4Address((100u + static_cast<std::uint32_t>(i)) << 24), 16));
  }
  for (auto prefix : universe) {
    for (auto id : ids) {
      if (!rng.chance(0.45)) continue;
      std::vector<net::Asn> path{rt.participant(id).asn};
      for (std::size_t k = 0, e = rng.below(3); k < e; ++k) {
        path.push_back(static_cast<net::Asn>(rng.range(100, 60000)));
      }
      rt.announce(id, prefix, net::AsPath(path));
    }
  }
  // Random policies.
  for (auto id : ids) {
    std::vector<OutboundClause> out;
    for (std::size_t k = 0, e = rng.below(3); k < e; ++k) {
      ParticipantId to = ids[rng.below(ids.size())];
      if (to == id) continue;
      OutboundClause c;
      c.match.dst_port(rng.chance(0.5) ? 80 : 443);
      if (rng.chance(0.3)) {
        c.match.dst(universe[rng.below(universe.size())]);
      }
      c.to = to;
      out.push_back(std::move(c));
    }
    rt.set_outbound(id, std::move(out));
    if (rng.chance(0.4)) {
      std::vector<InboundClause> in;
      InboundClause c;
      c.match.src(Ipv4Prefix::parse(rng.chance(0.5) ? "0.0.0.0/1"
                                                    : "128.0.0.0/1"));
      c.to_port = rng.below(rt.participant(id).ports.size());
      in.push_back(std::move(c));
      rt.set_inbound(id, std::move(in));
    }
  }
  rt.install();

  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t si = rng.below(ids.size());
    const ParticipantId sender = ids[si];
    const std::size_t port_index =
        rng.below(rt.participant(sender).ports.size());
    auto h = PacketBuilder()
                 .src_ip(Ipv4Address(static_cast<std::uint32_t>(rng())))
                 .dst_ip(Ipv4Address(
                     ((100u + static_cast<std::uint32_t>(rng.below(10)))
                      << 24) |
                     static_cast<std::uint32_t>(rng.below(1 << 24))))
                 .proto(net::kProtoTcp)
                 .dst_port(rng.chance(0.5) ? 80 : (rng.chance(0.5) ? 443 : 53))
                 .build();
    auto expected = oracle_forward(rt.participants(), rt.ports(),
                                   rt.route_server(), sender, port_index, h);
    auto got = rt.send(sender, h, port_index);
    ASSERT_EQ(got.size(), expected.size())
        << "sender=" << sender << " packet=" << h.to_string();
    if (!expected.empty()) {
      EXPECT_EQ(got[0].port, expected[0].egress) << h.to_string();
      EXPECT_EQ(got[0].frame, expected[0].frame) << h.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricVsOracle,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// Incremental fast path must preserve oracle equivalence (invariant 5).
class IncrementalVsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalVsOracle, FastPathKeepsFabricInSyncWithBgp) {
  net::SplitMix64 rng(GetParam() * 31);
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002, 2);
  auto c = rt.add_participant("C", 65003);
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b},
                      OutboundClause{ClauseMatch{}.dst_port(443), c}});
  rt.set_inbound(
      b, {InboundClause{ClauseMatch{}.src(Ipv4Prefix::parse("0.0.0.0/1")),
                        {},
                        0}});
  std::vector<Ipv4Prefix> universe;
  for (int i = 0; i < 6; ++i) {
    universe.push_back(Ipv4Prefix(
        Ipv4Address((100u + static_cast<std::uint32_t>(i)) << 24), 16));
  }
  std::vector<ParticipantId> ids{a, b, c};
  for (auto prefix : universe) {
    rt.announce(ids[rng.below(3)], prefix);
  }
  rt.install();

  for (int round = 0; round < 15; ++round) {
    // A random announce or withdraw, then behavioural spot checks.
    const auto prefix = universe[rng.below(universe.size())];
    const auto who = ids[rng.below(3)];
    if (rng.chance(0.5)) {
      std::vector<net::Asn> path{rt.participant(who).asn};
      for (std::size_t k = 0, e = rng.below(3); k < e; ++k) {
        path.push_back(static_cast<net::Asn>(rng.range(100, 60000)));
      }
      rt.announce(who, prefix, net::AsPath(path));
    } else {
      rt.withdraw(who, prefix);
    }
    if (rng.chance(0.25)) rt.background_recompile();

    for (int trial = 0; trial < 30; ++trial) {
      const ParticipantId sender = ids[rng.below(3)];
      auto h = PacketBuilder()
                   .src_ip(Ipv4Address(static_cast<std::uint32_t>(rng())))
                   .dst_ip(Ipv4Address(
                       ((100u + static_cast<std::uint32_t>(rng.below(7)))
                        << 24) |
                       1))
                   .proto(net::kProtoTcp)
                   .dst_port(rng.chance(0.4) ? 80 : 53)
                   .build();
      auto expected = oracle_forward(rt.participants(), rt.ports(),
                                     rt.route_server(), sender, 0, h);
      auto got = rt.send(sender, h, 0);
      ASSERT_EQ(got.size(), expected.size())
          << "round " << round << " " << h.to_string();
      if (!expected.empty()) {
        EXPECT_EQ(got[0].port, expected[0].egress);
        EXPECT_EQ(got[0].frame, expected[0].frame);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalVsOracle,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace sdx::core
