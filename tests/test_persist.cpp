// Unit tests for the persist/ library: CRC-32C, the binary codec, WAL
// framing and torn-tail detection, checkpoint atomicity, and journal
// scan/rotate/prune behaviour. Crash-recovery behaviour of the full runtime
// lives in test_recovery.cpp.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "persist/checkpoint.hpp"
#include "persist/crc32c.hpp"
#include "persist/journal.hpp"
#include "persist/wal.hpp"

namespace fs = std::filesystem;
using namespace sdx;
using namespace sdx::persist;

namespace {

/// mkdtemp-backed scratch directory, removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/sdx_persist_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string operator/(const std::string& name) const {
    return path + "/" + name;
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

bgp::Route sample_route() {
  bgp::Route r;
  r.prefix = net::Ipv4Prefix::parse("100.1.0.0/16");
  r.attrs.origin = bgp::Origin::kEgp;
  r.attrs.as_path = net::AsPath{65002, 900, 10};
  r.attrs.next_hop = net::Ipv4Address::parse("10.0.0.2");
  r.attrs.med = 50;
  r.attrs.communities = {bgp::make_community(65002, 7), bgp::kNoExport};
  r.learned_from = 2;
  r.peer_router_id = net::Ipv4Address::parse("10.0.0.2");
  return r;
}

core::Participant sample_participant() {
  core::Participant p;
  p.id = 3;
  p.name = "C";
  p.asn = 65003;
  core::PhysicalPort port;
  port.id = 4;
  port.router_mac = net::MacAddress(0x00'16'3E'00'00'04ull);
  port.router_ip = net::Ipv4Address::parse("10.0.0.4");
  p.ports.push_back(port);
  core::OutboundClause out;
  out.match.dst_port(80).src(net::Ipv4Prefix::parse("96.0.0.0/8"));
  out.to = 2;
  p.outbound.push_back(out);
  core::InboundClause in;
  in.match.dst(net::Ipv4Prefix::parse("100.1.0.0/16"));
  in.rewrites.emplace_back(net::Field::kDstIp,
                           net::Ipv4Address::parse("100.1.0.9").value());
  in.to_port = 0;
  p.inbound.push_back(in);
  return p;
}

}  // namespace

// --- CRC-32C ----------------------------------------------------------------

TEST(Crc32c, KnownAnswer) {
  // The canonical CRC-32C check value (RFC 3720 appendix / every
  // implementation's self-test vector).
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(crc32c(""), 0u); }

TEST(Crc32c, SeedChainsIncrementally) {
  const std::string a = "write-ahead";
  const std::string b = " log";
  EXPECT_EQ(crc32c(b, crc32c(a)), crc32c(a + b));
}

// --- codec ------------------------------------------------------------------

TEST(Codec, RouteRoundTrip) {
  const bgp::Route r = sample_route();
  Encoder e;
  put_route(e, r);
  Decoder d(e.bytes());
  EXPECT_EQ(get_route(d), r);
  EXPECT_TRUE(d.done());
}

TEST(Codec, RouteWithoutOptionalAttrs) {
  bgp::Route r = sample_route();
  r.attrs.med.reset();
  r.attrs.local_pref.reset();
  r.attrs.communities.clear();
  Encoder e;
  put_route(e, r);
  Decoder d(e.bytes());
  EXPECT_EQ(get_route(d), r);
}

TEST(Codec, ParticipantRoundTrip) {
  const core::Participant p = sample_participant();
  Encoder e;
  put_participant(e, p);
  Decoder d(e.bytes());
  EXPECT_EQ(get_participant(d), p);
  EXPECT_TRUE(d.done());
}

TEST(Codec, FlowMatchRoundTripsAllMaskShapes) {
  net::FlowMatch m;
  m.set(net::Field::kDstIp,
        net::FieldMatch::prefix(net::Ipv4Prefix::parse("100.1.0.0/16")));
  m.set(net::Field::kDstPort, net::FieldMatch::exact(80));
  // Remaining fields stay wildcard.
  Encoder e;
  put_flow_match(e, m);
  Decoder d(e.bytes());
  EXPECT_EQ(get_flow_match(d), m);
}

TEST(Codec, ClassifierRoundTrip) {
  policy::Rule r1;
  r1.match.set(net::Field::kDstPort, net::FieldMatch::exact(443));
  policy::ActionSeq a;
  a.then_set(net::Field::kPort, 7).then_set(net::Field::kDstMac, 0x42);
  r1.actions.push_back(a);
  policy::Rule r2;  // drop rule: no actions
  const policy::Classifier c({r1, r2});

  Encoder e;
  put_classifier(e, c);
  Decoder d(e.bytes());
  const policy::Classifier back = get_classifier(d);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.rules()[0].match, r1.match);
  ASSERT_EQ(back.rules()[0].actions.size(), 1u);
  EXPECT_EQ(back.rules()[0].actions[0].mods(), a.mods());
  EXPECT_TRUE(back.rules()[1].actions.empty());
}

TEST(Codec, TruncatedPayloadThrows) {
  Encoder e;
  put_route(e, sample_route());
  const std::string bytes = e.bytes();
  for (std::size_t cut : {std::size_t{0}, bytes.size() / 2,
                          bytes.size() - 1}) {
    Decoder d(std::string_view(bytes).substr(0, cut));
    EXPECT_THROW(get_route(d), CodecError) << "cut at " << cut;
  }
}

TEST(Codec, NonContiguousMaskRoundTrips) {
  // Arbitrary ternary masks are first-class since the partitioned
  // pipeline installs attribute-bit dst-MAC rules: a mask with a hole
  // decodes to the equivalent masked FieldMatch.
  Encoder e;
  for (std::size_t i = 0; i < net::kAllFields.size(); ++i) {
    e.u64(i == 0 ? 0x20200030ull : 0);
    e.u64(i == 0 ? 0xF0F0F0F0ull : 0);
  }
  Decoder d(e.bytes());
  const net::FlowMatch back = get_flow_match(d);
  EXPECT_EQ(back.field(net::kAllFields[0]),
            net::FieldMatch::masked(0x20200030ull, 0xF0F0F0F0ull));
}

TEST(Codec, ValueOutsideMaskThrows) {
  // Bits set in the value but absent from the mask can never match —
  // the constructors mask them away, so on the wire they are corruption.
  Encoder e;
  for (std::size_t i = 0; i < net::kAllFields.size(); ++i) {
    e.u64(i == 0 ? 0x0F000000ull : 0);
    e.u64(i == 0 ? 0xF0F0F0F0ull : 0);
  }
  Decoder d(e.bytes());
  EXPECT_THROW(get_flow_match(d), CodecError);
}

// --- WAL records ------------------------------------------------------------

TEST(WalRecord, AnnounceRoundTrip) {
  WalRecord rec;
  rec.type = WalRecordType::kAnnounce;
  rec.participant = 2;
  rec.prefix = net::Ipv4Prefix::parse("100.1.0.0/16");
  rec.has_path = true;
  rec.path = net::AsPath{65002, 900};
  rec.communities = {bgp::make_community(0, 65003)};
  const WalRecord back = decode_record(encode_record(rec));
  EXPECT_EQ(back.type, rec.type);
  EXPECT_EQ(back.participant, rec.participant);
  EXPECT_EQ(back.prefix, rec.prefix);
  EXPECT_TRUE(back.has_path);
  EXPECT_EQ(back.path, rec.path);
  EXPECT_EQ(back.communities, rec.communities);
}

TEST(WalRecord, PolicyRoundTrip) {
  WalRecord rec;
  rec.type = WalRecordType::kSetOutbound;
  rec.participant = 1;
  rec.outbound = sample_participant().outbound;
  const WalRecord back = decode_record(encode_record(rec));
  EXPECT_EQ(back.type, WalRecordType::kSetOutbound);
  EXPECT_EQ(back.outbound, rec.outbound);

  WalRecord rec2;
  rec2.type = WalRecordType::kSetInbound;
  rec2.participant = 3;
  rec2.inbound = sample_participant().inbound;
  const WalRecord back2 = decode_record(encode_record(rec2));
  EXPECT_EQ(back2.inbound, rec2.inbound);
}

TEST(WalRecord, UnknownTypeThrows) {
  Encoder e;
  e.u8(99);
  e.u32(1);
  EXPECT_THROW(decode_record(e.bytes()), CodecError);
}

// --- WAL segments -----------------------------------------------------------

TEST(WalSegment, WriteReadRoundTrip) {
  TempDir dir;
  const std::string path = dir / "wal-0.log";
  {
    WalWriter w = WalWriter::create(path, 42, /*genesis=*/true);
    w.append("alpha");
    w.append("beta");
    w.append("");
    w.sync();
  }
  const WalSegment seg = read_wal_segment(path);
  EXPECT_TRUE(seg.header_valid);
  EXPECT_EQ(seg.first_lsn, 42u);
  EXPECT_TRUE(seg.genesis);
  ASSERT_EQ(seg.payloads.size(), 3u);
  EXPECT_EQ(seg.payloads[0], "alpha");
  EXPECT_EQ(seg.payloads[1], "beta");
  EXPECT_EQ(seg.payloads[2], "");
  EXPECT_EQ(seg.torn_bytes, 0u);
  EXPECT_EQ(seg.valid_bytes, fs::file_size(path));
}

TEST(WalSegment, TruncationAtEveryByteDropsOnlyTheTornRecord) {
  TempDir dir;
  const std::string path = dir / "wal-0.log";
  {
    WalWriter w = WalWriter::create(path, 0, true);
    w.append("first-record");
    w.append("second-record");
  }
  const std::string full = read_file(path);
  const std::size_t second_start =
      kWalHeaderBytes + kWalFrameBytes + std::string("first-record").size();
  // Every truncation point inside the second record must recover exactly
  // the first record and report the rest as torn.
  for (std::size_t cut = second_start; cut < full.size(); ++cut) {
    const std::string trunc_path = dir / "trunc.log";
    write_file(trunc_path, full.substr(0, cut));
    const WalSegment seg = read_wal_segment(trunc_path);
    EXPECT_TRUE(seg.header_valid);
    ASSERT_EQ(seg.payloads.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(seg.payloads[0], "first-record");
    EXPECT_EQ(seg.valid_bytes, second_start);
    EXPECT_EQ(seg.torn_bytes, cut - second_start);
  }
}

TEST(WalSegment, CorruptPayloadStopsTheScan) {
  TempDir dir;
  const std::string path = dir / "wal-0.log";
  {
    WalWriter w = WalWriter::create(path, 0, true);
    w.append("kept");
    w.append("corrupted");
  }
  std::string bytes = read_file(path);
  bytes[bytes.size() - 3] ^= 0x01;  // flip a bit inside the last payload
  write_file(path, bytes);
  const WalSegment seg = read_wal_segment(path);
  ASSERT_EQ(seg.payloads.size(), 1u);
  EXPECT_EQ(seg.payloads[0], "kept");
  EXPECT_GT(seg.torn_bytes, 0u);
}

TEST(WalSegment, TornHeaderInvalidatesWholeFile) {
  TempDir dir;
  const std::string path = dir / "wal-0.log";
  write_file(path, "SDXWAL01\x01\x02");  // header never fully landed
  const WalSegment seg = read_wal_segment(path);
  EXPECT_FALSE(seg.header_valid);
  EXPECT_EQ(seg.torn_bytes, fs::file_size(path));
}

TEST(WalWriter, OpenAppendTruncatesTornTail) {
  TempDir dir;
  const std::string path = dir / "wal-0.log";
  std::size_t clean = 0;
  {
    WalWriter w = WalWriter::create(path, 0, true);
    w.append("complete");
    clean = w.size();
  }
  write_file(path, read_file(path) + "torn-garbage");
  {
    WalWriter w = WalWriter::open_append(path, clean);
    w.append("after-recovery");
  }
  const WalSegment seg = read_wal_segment(path);
  ASSERT_EQ(seg.payloads.size(), 2u);
  EXPECT_EQ(seg.payloads[0], "complete");
  EXPECT_EQ(seg.payloads[1], "after-recovery");
  EXPECT_EQ(seg.torn_bytes, 0u);
}

// --- checkpoints ------------------------------------------------------------

namespace {

CheckpointState sample_checkpoint() {
  CheckpointState st;
  st.participants = {sample_participant()};
  st.routes = {sample_route()};
  st.vnh_pool = net::Ipv4Prefix::parse("172.16.0.0/12");
  st.vnh_allocated = 3;
  st.next_cookie = 9;
  st.installed = true;
  policy::Rule rule;
  rule.match.set(net::Field::kDstMac, net::FieldMatch::exact(0x020000000001));
  policy::ActionSeq act;
  act.then_set(net::Field::kPort, 4);
  rule.actions.push_back(act);
  st.compiled.fabric = policy::Classifier({rule});
  core::PrefixGroup group;
  group.prefixes = {net::Ipv4Prefix::parse("100.1.0.0/16")};
  group.clauses = {0};
  group.defaults = {std::nullopt, core::ParticipantId{2}};
  st.compiled.fecs.groups.push_back(group);
  st.compiled.fecs.group_of[group.prefixes[0]] = 0;
  st.compiled.bindings = {{net::Ipv4Address::parse("172.16.0.1"),
                           net::MacAddress(0x020000000001ull)}};
  st.compiled.reaches = {{3, 0, group.prefixes}};
  st.fingerprint = st.compiled.fingerprint();
  st.fast_bindings = {{net::Ipv4Prefix::parse("100.2.0.0/16"),
                       {net::Ipv4Address::parse("172.16.0.2"),
                        net::MacAddress(0x020000000002ull)}}};
  st.remote_bindings = {{4,
                         {net::Ipv4Address::parse("172.16.0.3"),
                          net::MacAddress(0x020000000003ull)}}};
  CheckpointState::ExtraRule extra;
  extra.priority = 1u << 24;
  extra.cookie = 8;
  extra.rule = rule;
  st.extra_rules.push_back(extra);
  return st;
}

}  // namespace

TEST(Checkpoint, RoundTripPreservesFingerprint) {
  const CheckpointState st = sample_checkpoint();
  const CheckpointState back = decode_checkpoint(encode_checkpoint(st));
  EXPECT_EQ(back.participants, st.participants);
  ASSERT_EQ(back.routes.size(), 1u);
  EXPECT_EQ(back.routes[0], st.routes[0]);
  EXPECT_EQ(back.vnh_allocated, st.vnh_allocated);
  EXPECT_EQ(back.next_cookie, st.next_cookie);
  EXPECT_TRUE(back.installed);
  EXPECT_EQ(back.fingerprint, st.fingerprint);
  // The decoded artifact must fingerprint identically — the warm-restart
  // gate in SdxRuntime::recover().
  EXPECT_EQ(back.compiled.fingerprint(), st.compiled.fingerprint());
  // group_of is rebuilt, not stored.
  ASSERT_EQ(back.compiled.fecs.group_of.size(), 1u);
  EXPECT_EQ(back.compiled.fecs.group_of.at(
                net::Ipv4Prefix::parse("100.1.0.0/16")),
            0u);
  EXPECT_EQ(back.fast_bindings, st.fast_bindings);
  EXPECT_EQ(back.remote_bindings, st.remote_bindings);
  ASSERT_EQ(back.extra_rules.size(), 1u);
  EXPECT_EQ(back.extra_rules[0].priority, st.extra_rules[0].priority);
  EXPECT_EQ(back.extra_rules[0].cookie, st.extra_rules[0].cookie);
}

TEST(Checkpoint, FileWriteIsAtomicAndValidates) {
  TempDir dir;
  const std::string path = dir / "checkpoint-1.ckpt";
  write_checkpoint_file(path, sample_checkpoint());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  const auto loaded = try_load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->fingerprint, sample_checkpoint().fingerprint);
}

TEST(Checkpoint, CorruptionYieldsNullopt) {
  TempDir dir;
  const std::string path = dir / "checkpoint-1.ckpt";
  write_checkpoint_file(path, sample_checkpoint());
  std::string bytes = read_file(path);

  EXPECT_FALSE(try_load_checkpoint(dir / "missing.ckpt").has_value());

  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x10;
  write_file(path, flipped);
  EXPECT_FALSE(try_load_checkpoint(path).has_value());

  write_file(path, bytes.substr(0, bytes.size() - 7));
  EXPECT_FALSE(try_load_checkpoint(path).has_value());

  write_file(path, "not a checkpoint at all");
  EXPECT_FALSE(try_load_checkpoint(path).has_value());
}

// --- journal ----------------------------------------------------------------

TEST(Journal, FreshDirectoryRecordsGenesisChain) {
  TempDir dir;
  {
    Journal j(dir.path);
    EXPECT_TRUE(j.empty());
    j.start_recording(/*genesis_if_new=*/true);
    WalRecord rec;
    rec.type = WalRecordType::kInstall;
    EXPECT_EQ(j.append(rec), 0u);
    EXPECT_EQ(j.append(rec), 1u);
    EXPECT_EQ(j.next_lsn(), 2u);
    EXPECT_GT(j.bytes_appended(), 0u);
  }
  Journal j(dir.path);
  EXPECT_FALSE(j.empty());
  EXPECT_TRUE(j.complete_history());
  EXPECT_FALSE(j.checkpoint().has_value());
  EXPECT_EQ(j.tail().size(), 2u);
  EXPECT_EQ(j.next_lsn(), 2u);
}

TEST(Journal, CheckpointRotatesAndPrunes) {
  TempDir dir;
  WalRecord rec;
  rec.type = WalRecordType::kInstall;
  {
    Journal j(dir.path);
    j.start_recording(true);
    j.append(rec);
    j.append(rec);
    EXPECT_EQ(j.write_checkpoint(sample_checkpoint()), 2u);
    EXPECT_EQ(j.last_checkpoint_lsn(), 2u);
    j.append(rec);  // lsn 2 → the new segment
  }
  // Exactly one checkpoint and one (post-rotation) segment survive.
  std::size_t ckpts = 0, segs = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    ckpts += name.ends_with(".ckpt");
    segs += name.ends_with(".log");
  }
  EXPECT_EQ(ckpts, 1u);
  EXPECT_EQ(segs, 1u);

  Journal j(dir.path);
  ASSERT_TRUE(j.checkpoint().has_value());
  EXPECT_EQ(j.checkpoint()->lsn, 2u);
  EXPECT_EQ(j.tail().size(), 1u);       // only the post-checkpoint record
  EXPECT_FALSE(j.complete_history());   // pre-checkpoint history was pruned
  EXPECT_EQ(j.next_lsn(), 3u);
}

TEST(Journal, FallsBackToOlderCheckpointWhenNewestIsCorrupt) {
  TempDir dir;
  {
    Journal j(dir.path);
    j.start_recording(true);
    j.write_checkpoint(sample_checkpoint());
  }
  // A half-written newer checkpoint (crash mid-rename never happens — but a
  // corrupted file can): must fall back to the older valid one.
  write_file(dir / "checkpoint-00000000000000000099.ckpt", "garbage");
  Journal j(dir.path);
  ASSERT_TRUE(j.checkpoint().has_value());
  EXPECT_EQ(j.checkpoint()->lsn, 0u);
}

TEST(Journal, ReopenTruncatesTornTailAndContinues) {
  TempDir dir;
  WalRecord rec;
  rec.type = WalRecordType::kSessionDown;
  rec.participant = 7;
  std::string seg_path;
  {
    Journal j(dir.path);
    j.start_recording(true);
    j.append(rec);
    for (const auto& entry : fs::directory_iterator(dir.path)) {
      seg_path = entry.path().string();
    }
  }
  write_file(seg_path, read_file(seg_path) + "half-a-record");
  {
    Journal j(dir.path);
    EXPECT_EQ(j.tail().size(), 1u);
    EXPECT_GT(j.torn_bytes(), 0u);
    j.start_recording(true);
    EXPECT_EQ(j.append(rec), 1u);
  }
  Journal j(dir.path);
  EXPECT_EQ(j.tail().size(), 2u);
  EXPECT_EQ(j.torn_bytes(), 0u);
}

TEST(Journal, AppendBeforeStartRecordingThrows) {
  TempDir dir;
  Journal j(dir.path);
  WalRecord rec;
  EXPECT_THROW(j.append(rec), std::logic_error);
}
