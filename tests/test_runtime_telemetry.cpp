/// Acceptance tests for the runtime's telemetry wiring (ISSUE tentpole):
/// a full install() plus one fast-path announce() must surface route-server,
/// compiler-stage, fast-path, frontend and flow-table series in one
/// Prometheus dump; the trace must nest the five compiler stages under one
/// compile span; and the counter series must be byte-identical across
/// CompileOptions::threads values.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "sdx/runtime.hpp"

namespace sdx::core {
namespace {

using net::Ipv4Prefix;
using telemetry::SpanTracer;

/// The shared workload: wire distribution, an outbound policy, two
/// announcements before install, one fast-path announcement and a withdraw
/// after, and a couple of data-plane packets.
void drive(SdxRuntime& rt) {
  rt.use_wire_distribution();
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  auto c = rt.add_participant("C", 65003);
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65002, 9});
  rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
  rt.install();
  rt.announce(c, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65003});
  rt.withdraw(b, Ipv4Prefix::parse("100.1.0.0/16"));
  for (std::uint64_t port : {80u, 53u}) {
    auto payload = net::PacketBuilder()
                       .src_ip("96.25.160.5")
                       .dst_ip("100.1.2.3")
                       .proto(net::kProtoTcp)
                       .dst_port(port)
                       .build();
    rt.send(a, payload);
  }
}

/// The byte-stability contract covers the counter series: every sample (and
/// header) line of a `_total` family, in exposition order.
std::vector<std::string> counter_lines(const std::string& dump) {
  std::vector<std::string> out;
  std::istringstream is(dump);
  for (std::string line; std::getline(is, line);) {
    if (line.find("_total") != std::string::npos) out.push_back(line);
  }
  return out;
}

TEST(RuntimeTelemetry, InstallPlusFastPathSurfacesEverySeries) {
  SdxRuntime rt;
  drive(rt);
  const std::string dump = rt.dump_metrics();

  // Route server: churn counters and the occupancy gauge. Three
  // announcements, one withdrawal; 100.1.0.0/16 best-route changes on the
  // second announce and on the withdrawal.
  EXPECT_NE(dump.find("sdx_route_server_announcements_total 3"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("sdx_route_server_withdrawals_total 1"),
            std::string::npos);
  EXPECT_NE(dump.find("sdx_route_server_prefixes 2"), std::string::npos);
  EXPECT_NE(dump.find("# TYPE sdx_route_server_best_changes_total counter"),
            std::string::npos);

  // Compiler: one full pipeline run, every stage priced once.
  EXPECT_NE(dump.find("sdx_compile_runs_total 1"), std::string::npos);
  for (const char* stage :
       {"snapshot", "reach", "fec_vnh", "synth", "compose"}) {
    EXPECT_NE(dump.find("sdx_compile_stage_seconds_count{stage=\"" +
                        std::string(stage) + "\"} 1"),
              std::string::npos)
        << stage;
  }

  // §4.3.2 fast path: the post-install announce and withdraw ran it.
  EXPECT_NE(dump.find("sdx_fast_path_updates_total 2"), std::string::npos);
  EXPECT_NE(dump.find("# TYPE sdx_fast_path_seconds histogram"),
            std::string::npos);
  EXPECT_NE(dump.find("sdx_fast_path_seconds_count 2"), std::string::npos);

  // Frontend: pre-install readvertisements (2 announces × 3 peers),
  // install's readvertisement (1 prefix × 3) and two fast-path
  // readvertisements (2 × 3) all crossed the wire.
  EXPECT_NE(dump.find("sdx_frontend_updates_total 15"), std::string::npos);
  EXPECT_GT(rt.telemetry().metrics.counter("sdx_frontend_bytes_total").value(),
            0u);
  EXPECT_NE(dump.find("sdx_frontend_session_drops_total 0"),
            std::string::npos);

  // Data plane: one delivered packet per port-80 send, occupancy gauges
  // refreshed by dump_metrics().
  EXPECT_NE(dump.find("sdx_flow_table_matched_total"), std::string::npos);
  EXPECT_GT(rt.telemetry().metrics.counter("sdx_flow_table_matched_total")
                .value(),
            0u);
  EXPECT_GT(rt.telemetry().metrics.gauge("sdx_flow_table_rules").value(), 0);
  EXPECT_NE(dump.find("# TYPE sdx_arp_queries_total counter"),
            std::string::npos);
}

TEST(RuntimeTelemetry, CompilerStageSpansNestUnderOneCompileSpan) {
  SdxRuntime rt;
  drive(rt);
  const auto records = rt.telemetry().tracer.records();

  std::vector<SpanTracer::Record> compiles;
  for (const auto& r : records) {
    if (r.name == "compile") compiles.push_back(r);
  }
  ASSERT_EQ(compiles.size(), 1u);  // one install() → one pipeline run
  const auto& compile = compiles.front();

  for (const char* stage :
       {"snapshot", "reach", "fec_vnh", "synth", "compose"}) {
    auto it = std::find_if(
        records.begin(), records.end(),
        [stage](const SpanTracer::Record& r) { return r.name == stage; });
    ASSERT_NE(it, records.end()) << stage;
    EXPECT_TRUE(compile.encloses(*it)) << stage;
  }
  // The compile itself sits inside the install() span, and the post-install
  // updates recorded fast_update spans.
  auto install = std::find_if(
      records.begin(), records.end(),
      [](const SpanTracer::Record& r) { return r.name == "install"; });
  ASSERT_NE(install, records.end());
  EXPECT_TRUE(install->encloses(compile));
  EXPECT_EQ(std::count_if(records.begin(), records.end(),
                          [](const SpanTracer::Record& r) {
                            return r.name == "fast_update";
                          }),
            2);

  // And the exported Chrome JSON carries them as complete events.
  const std::string json = rt.dump_trace();
  EXPECT_NE(json.find("\"name\":\"compile\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compose\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(RuntimeTelemetry, CounterSeriesByteStableAcrossThreadCounts) {
  auto run = [](unsigned threads) {
    CompileOptions opt;
    opt.threads = threads;
    SdxRuntime rt({}, opt);
    drive(rt);
    return rt.dump_metrics();
  };
  const auto serial = counter_lines(run(1));
  const auto parallel = counter_lines(run(8));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(RuntimeTelemetry, PartitionedCompileSurfacesPerParticipantSeries) {
  CompileOptions opt;
  opt.partitioned = true;
  SdxRuntime rt({}, opt);
  drive(rt);
  const std::string dump = rt.dump_metrics();

  // One full compile priced every physical partition once, labelled by
  // participant.
  for (const char* name : {"A", "B", "C"}) {
    EXPECT_NE(
        dump.find("sdx_partition_compile_seconds_count{participant=\"" +
                  std::string(name) + "\"} 1"),
        std::string::npos)
        << name << "\n"
        << dump;
  }
  // No policy changed after install, so nothing recompiled in place.
  EXPECT_NE(dump.find("sdx_partitions_recompiled_total 0"), std::string::npos);

  // One outbound change → exactly one partition recompiled: the counter
  // ticks once and only the dirty participant's histogram gains a sample.
  rt.set_outbound(1, {OutboundClause{ClauseMatch{}.dst_port(8080), 2}});
  const std::string after = rt.dump_metrics();
  EXPECT_NE(after.find("sdx_partitions_recompiled_total 1"),
            std::string::npos);
  EXPECT_NE(
      after.find("sdx_partition_compile_seconds_count{participant=\"A\"} 2"),
      std::string::npos)
      << after;
  for (const char* name : {"B", "C"}) {
    EXPECT_NE(
        after.find("sdx_partition_compile_seconds_count{participant=\"" +
                   std::string(name) + "\"} 1"),
        std::string::npos)
        << name;
  }
  // The recompile ran under its own span, not the full pipeline's.
  const auto records = rt.telemetry().tracer.records();
  EXPECT_EQ(std::count_if(records.begin(), records.end(),
                          [](const SpanTracer::Record& r) {
                            return r.name == "partition_recompile";
                          }),
            1);
  EXPECT_EQ(std::count_if(records.begin(), records.end(),
                          [](const SpanTracer::Record& r) {
                            return r.name == "compile";
                          }),
            1);
}

TEST(RuntimeTelemetry, PartitionedCounterSeriesByteStableAcrossThreadCounts) {
  auto run = [](unsigned threads) {
    CompileOptions opt;
    opt.partitioned = true;
    opt.threads = threads;
    SdxRuntime rt({}, opt);
    drive(rt);
    return rt.dump_metrics();
  };
  const auto serial = counter_lines(run(1));
  const auto parallel = counter_lines(run(8));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(RuntimeTelemetry, AdvanceClockSurfacesSessionDrops) {
  SdxRuntime rt;
  rt.use_wire_distribution();
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65002});
  rt.install();
  ASSERT_EQ(rt.route_server().prefix_count(), 1u);

  // One jump past the 90 s hold time kills both sessions. The runtime
  // surfaces the drops: returned ids, counted drops, withdrawn routes.
  auto dropped = rt.advance_clock(1000.0);
  std::sort(dropped.begin(), dropped.end());
  EXPECT_EQ(dropped, (std::vector<ParticipantId>{a, b}));
  EXPECT_FALSE(rt.frontend()->established(a));
  EXPECT_EQ(rt.route_server().prefix_count(), 0u);
  EXPECT_NE(rt.dump_metrics().find("sdx_frontend_session_drops_total 2"),
            std::string::npos);
  // The sessions are gone, not zombies: another tick reports nothing new.
  EXPECT_TRUE(rt.advance_clock(1000.0).empty());

  // Without wire distribution the clock is a no-op.
  SdxRuntime direct;
  EXPECT_TRUE(direct.advance_clock(1000.0).empty());
}

}  // namespace
}  // namespace sdx::core
