/// Tests for the BGP session layer: framing over a byte stream, the RFC
/// 4271 state machine, keepalive/hold-timer behaviour, and interop of two
/// endpoints wired head-to-head.

#include <gtest/gtest.h>

#include "bgp/session.hpp"
#include "netbase/rng.hpp"

namespace sdx::bgp {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;

Session::Config config(Asn asn, const char* id, std::uint16_t hold = 90) {
  return Session::Config{asn, Ipv4Address::parse(id), hold};
}

/// Pumps bytes between two sessions until both output queues drain.
std::vector<Session::Event> pump(Session& a, Session& b) {
  std::vector<Session::Event> events;
  for (int round = 0; round < 16; ++round) {
    auto from_a = a.take_output();
    auto from_b = b.take_output();
    if (from_a.empty() && from_b.empty()) break;
    for (auto& ev : b.receive(from_a)) events.push_back(std::move(ev));
    for (auto& ev : a.receive(from_b)) events.push_back(std::move(ev));
  }
  return events;
}

TEST(SessionTest, HandshakeReachesEstablished) {
  Session a(config(65001, "10.0.0.1"));
  Session b(config(65002, "10.0.0.2"));
  a.start();
  b.start();
  auto events = pump(a, b);
  EXPECT_EQ(a.state(), Session::State::kEstablished);
  EXPECT_EQ(b.state(), Session::State::kEstablished);
  ASSERT_TRUE(a.peer_open().has_value());
  EXPECT_EQ(a.peer_open()->my_as, 65002u);
  EXPECT_EQ(b.peer_open()->my_as, 65001u);
  // Each side sees exactly one kEstablished event.
  int established = 0;
  for (const auto& ev : events) {
    established += ev.kind == Session::Event::Kind::kEstablished;
  }
  EXPECT_EQ(established, 2);
}

TEST(SessionTest, StartTwiceThrows) {
  Session a(config(65001, "10.0.0.1"));
  a.start();
  EXPECT_THROW(a.start(), std::logic_error);
}

TEST(SessionTest, UpdateFlowsEndToEnd) {
  Session a(config(65001, "10.0.0.1"));
  Session b(config(65002, "10.0.0.2"));
  a.start();
  b.start();
  pump(a, b);

  UpdateMessage u;
  RouteAttributes attrs;
  attrs.as_path = net::AsPath{65001, 7};
  attrs.next_hop = Ipv4Address::parse("10.0.0.1");
  u.attrs = attrs;
  u.nlri = {Ipv4Prefix::parse("100.1.0.0/16")};
  a.send_update(u);
  auto events = b.receive(a.take_output());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Session::Event::Kind::kUpdate);
  EXPECT_EQ(events[0].update, u);
  EXPECT_EQ(a.updates_sent(), 1u);
  EXPECT_EQ(b.updates_received(), 1u);
}

TEST(SessionTest, SendUpdateBeforeEstablishedThrows) {
  Session a(config(65001, "10.0.0.1"));
  UpdateMessage u;
  EXPECT_THROW(a.send_update(u), std::logic_error);
  a.start();
  EXPECT_THROW(a.send_update(u), std::logic_error);
}

TEST(SessionTest, FragmentedDeliveryReassembles) {
  Session a(config(65001, "10.0.0.1"));
  Session b(config(65002, "10.0.0.2"));
  a.start();
  b.start();
  pump(a, b);

  UpdateMessage u;
  RouteAttributes attrs;
  attrs.as_path = net::AsPath{65001};
  attrs.next_hop = Ipv4Address::parse("10.0.0.1");
  u.attrs = attrs;
  for (int i = 0; i < 20; ++i) {
    u.nlri.push_back(Ipv4Prefix(
        Ipv4Address((100u + static_cast<std::uint32_t>(i)) << 24), 16));
  }
  a.send_update(u);
  auto bytes = a.take_output();
  // Deliver one byte at a time: the framer must buffer partial messages.
  std::vector<Session::Event> events;
  for (auto byte : bytes) {
    auto evs = b.receive(std::span(&byte, 1));
    for (auto& ev : evs) events.push_back(std::move(ev));
  }
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].update, u);
}

TEST(SessionTest, CoalescedDeliverySplitsFrames) {
  Session a(config(65001, "10.0.0.1"));
  Session b(config(65002, "10.0.0.2"));
  a.start();
  b.start();
  pump(a, b);
  UpdateMessage u1, u2;
  RouteAttributes attrs;
  attrs.as_path = net::AsPath{65001};
  attrs.next_hop = Ipv4Address::parse("10.0.0.1");
  u1.attrs = attrs;
  u1.nlri = {Ipv4Prefix::parse("100.0.0.0/8")};
  u2.withdrawn = {Ipv4Prefix::parse("101.0.0.0/8")};
  a.send_update(u1);
  a.send_update(u2);
  auto events = b.receive(a.take_output());  // both frames in one read
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].update, u1);
  EXPECT_EQ(events[1].update, u2);
}

TEST(SessionTest, CorruptMarkerClosesWithNotification) {
  Session a(config(65001, "10.0.0.1"));
  Session b(config(65002, "10.0.0.2"));
  a.start();
  b.start();
  pump(a, b);
  auto junk = encode(KeepaliveMessage{});
  junk[0] = 0x00;
  auto events = b.receive(junk);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Session::Event::Kind::kClosed);
  EXPECT_EQ(b.state(), Session::State::kClosed);
  // The peer learns about it from the NOTIFICATION.
  auto peer_events = a.receive(b.take_output());
  ASSERT_EQ(peer_events.size(), 1u);
  EXPECT_EQ(peer_events[0].kind,
            Session::Event::Kind::kNotificationReceived);
  EXPECT_EQ(a.state(), Session::State::kClosed);
}

TEST(SessionTest, UpdateBeforeOpenIsFsmError) {
  Session a(config(65001, "10.0.0.1"));
  a.start();  // OpenSent; an UPDATE now violates the FSM
  UpdateMessage u;
  u.withdrawn = {Ipv4Prefix::parse("100.0.0.0/8")};
  auto events = a.receive(encode(u));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Session::Event::Kind::kClosed);
  EXPECT_EQ(events[0].notification.code, 5);  // FSM error
}

TEST(SessionTest, HoldTimerExpiryClosesSession) {
  Session a(config(65001, "10.0.0.1", /*hold=*/30));
  Session b(config(65002, "10.0.0.2", /*hold=*/30));
  a.start();
  b.start();
  pump(a, b);
  ASSERT_EQ(a.state(), Session::State::kEstablished);
  // Silence for the full hold time: a closes with code 4.
  auto events = a.advance_clock(31.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, Session::Event::Kind::kClosed);
  EXPECT_EQ(events[0].notification.code, 4);
  EXPECT_EQ(a.state(), Session::State::kClosed);
}

TEST(SessionTest, KeepalivesKeepTheSessionAlive) {
  Session a(config(65001, "10.0.0.1", /*hold=*/30));
  Session b(config(65002, "10.0.0.2", /*hold=*/30));
  a.start();
  b.start();
  pump(a, b);
  // Advance both clocks in lockstep, exchanging traffic each tick: the
  // automatic keepalives (hold/3) must keep both sides Established.
  for (int tick = 0; tick < 20; ++tick) {
    auto ea = a.advance_clock(5.0);
    auto eb = b.advance_clock(5.0);
    EXPECT_TRUE(ea.empty());
    EXPECT_TRUE(eb.empty());
    pump(a, b);
  }
  EXPECT_EQ(a.state(), Session::State::kEstablished);
  EXPECT_EQ(b.state(), Session::State::kEstablished);
}

TEST(SessionTest, ZeroHoldTimeDisablesTimer) {
  Session a(config(65001, "10.0.0.1", /*hold=*/0));
  Session b(config(65002, "10.0.0.2", /*hold=*/0));
  a.start();
  b.start();
  pump(a, b);
  EXPECT_TRUE(a.advance_clock(1e6).empty());
  EXPECT_EQ(a.state(), Session::State::kEstablished);
}

TEST(SessionTest, RandomFragmentationTornWrites) {
  net::SplitMix64 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    Session a(config(65001, "10.0.0.1"));
    Session b(config(65002, "10.0.0.2"));
    a.start();
    b.start();
    pump(a, b);
    std::vector<UpdateMessage> sent;
    for (int i = 0; i < 5; ++i) {
      UpdateMessage u;
      RouteAttributes attrs;
      attrs.as_path = net::AsPath{65001, static_cast<Asn>(rng.range(1, 999))};
      attrs.next_hop = Ipv4Address::parse("10.0.0.1");
      u.attrs = attrs;
      u.nlri = {Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(rng())),
                           static_cast<int>(rng.range(8, 28)))};
      a.send_update(u);
      sent.push_back(std::move(u));
    }
    auto bytes = a.take_output();
    std::vector<Session::Event> events;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.below(40), bytes.size() - pos);
      auto evs = b.receive(std::span(bytes).subspan(pos, chunk));
      for (auto& ev : evs) events.push_back(std::move(ev));
      pos += chunk;
    }
    ASSERT_EQ(events.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(events[i].update, sent[i]);
    }
  }
}

}  // namespace
}  // namespace sdx::bgp
