/// Property tests for the minimum-disjoint-subsets computation (invariant
/// 8 of DESIGN.md): over random clause collections, the produced groups
/// must partition the covered prefixes, be behaviour-homogeneous, and be
/// maximal (no two groups with identical signatures).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "netbase/rng.hpp"
#include "sdx/fec.hpp"

namespace sdx::core {
namespace {

using net::Ipv4Prefix;
using net::SplitMix64;

struct RandomInput {
  std::vector<ClauseReach> clauses;
  std::vector<Ipv4Prefix> universe;
  std::vector<DefaultVector> defaults_by_index;  // per universe index

  DefaultVector defaults_of(Ipv4Prefix p) const {
    for (std::size_t i = 0; i < universe.size(); ++i) {
      if (universe[i] == p) return defaults_by_index[i];
    }
    return {};
  }
};

RandomInput make_input(SplitMix64& rng) {
  RandomInput in;
  const std::size_t n_prefixes = 20 + rng.below(60);
  for (std::size_t i = 0; i < n_prefixes; ++i) {
    in.universe.push_back(Ipv4Prefix(
        net::Ipv4Address((10u << 24) | (static_cast<std::uint32_t>(i) << 12)),
        24));
    DefaultVector d(3);
    for (auto& slot : d) {
      if (rng.chance(0.8)) slot = static_cast<ParticipantId>(rng.below(4));
    }
    in.defaults_by_index.push_back(std::move(d));
  }
  const std::size_t n_clauses = rng.below(8);
  for (std::size_t c = 0; c < n_clauses; ++c) {
    ClauseReach cr;
    for (std::size_t i = 0; i < n_prefixes; ++i) {
      if (rng.chance(0.35)) cr.prefixes.push_back(in.universe[i]);
    }
    in.clauses.push_back(std::move(cr));
  }
  return in;
}

/// The signature the groups must be homogeneous over.
std::pair<std::vector<std::uint32_t>, DefaultVector> signature_of(
    const RandomInput& in, Ipv4Prefix p) {
  std::vector<std::uint32_t> member;
  for (std::uint32_t c = 0; c < in.clauses.size(); ++c) {
    if (std::find(in.clauses[c].prefixes.begin(),
                  in.clauses[c].prefixes.end(),
                  p) != in.clauses[c].prefixes.end()) {
      member.push_back(c);
    }
  }
  return {member, in.defaults_of(p)};
}

class FecProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FecProperties, GroupsPartitionCoveredPrefixes) {
  SplitMix64 rng(GetParam() * 101);
  for (int trial = 0; trial < 20; ++trial) {
    auto in = make_input(rng);
    auto result = compute_fecs(
        in.clauses, [&in](Ipv4Prefix p) { return in.defaults_of(p); });

    // Exactly the covered prefixes are grouped, each exactly once.
    std::set<Ipv4Prefix> covered;
    for (const auto& c : in.clauses) {
      covered.insert(c.prefixes.begin(), c.prefixes.end());
    }
    std::set<Ipv4Prefix> grouped;
    for (const auto& g : result.groups) {
      for (auto p : g.prefixes) {
        EXPECT_TRUE(grouped.insert(p).second) << "duplicate " << p;
      }
      EXPECT_FALSE(g.prefixes.empty());
    }
    EXPECT_EQ(grouped, covered);
    // group_of agrees with the group contents.
    for (std::uint32_t g = 0; g < result.groups.size(); ++g) {
      for (auto p : result.groups[g].prefixes) {
        EXPECT_EQ(result.group_of.at(p), g);
      }
    }
  }
}

TEST_P(FecProperties, GroupsAreHomogeneousAndMaximal) {
  SplitMix64 rng(GetParam() * 211);
  for (int trial = 0; trial < 20; ++trial) {
    auto in = make_input(rng);
    auto result = compute_fecs(
        in.clauses, [&in](Ipv4Prefix p) { return in.defaults_of(p); });

    // Homogeneous: every prefix of a group carries the group's signature.
    for (const auto& g : result.groups) {
      for (auto p : g.prefixes) {
        auto [member, defaults] = signature_of(in, p);
        EXPECT_EQ(member, g.clauses) << p;
        EXPECT_EQ(defaults, g.defaults) << p;
      }
    }
    // Maximal: no two groups share a signature ("any two prefixes sharing
    // the same behavior should always belong to the same group").
    for (std::size_t i = 0; i < result.groups.size(); ++i) {
      for (std::size_t j = i + 1; j < result.groups.size(); ++j) {
        EXPECT_FALSE(result.groups[i].clauses == result.groups[j].clauses &&
                     result.groups[i].defaults == result.groups[j].defaults)
            << "groups " << i << " and " << j << " should have merged";
      }
    }
  }
}

TEST_P(FecProperties, GroupCountNeverExceedsCoveredPrefixes) {
  SplitMix64 rng(GetParam() * 307);
  for (int trial = 0; trial < 20; ++trial) {
    auto in = make_input(rng);
    auto result = compute_fecs(
        in.clauses, [&in](Ipv4Prefix p) { return in.defaults_of(p); });
    EXPECT_LE(result.group_count(), result.group_of.size());
    // And is bounded by the theoretical signature count.
    std::set<std::pair<std::vector<std::uint32_t>, DefaultVector>> sigs;
    for (const auto& [p, _] : result.group_of) {
      sigs.insert(signature_of(in, p));
    }
    EXPECT_EQ(result.group_count(), sigs.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FecProperties, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace sdx::core
