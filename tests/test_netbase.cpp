/// Unit tests for the netbase substrate: addresses, prefixes, MACs,
/// AS paths, the prefix trie and the ternary match algebra.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "netbase/as_path.hpp"
#include "netbase/field_match.hpp"
#include "netbase/ip.hpp"
#include "netbase/mac.hpp"
#include "netbase/packet.hpp"
#include "netbase/prefix_trie.hpp"
#include "netbase/rng.hpp"

namespace sdx::net {
namespace {

TEST(Ipv4Address, ParseAndFormatRoundTrip) {
  auto a = Ipv4Address::parse("74.125.1.1");
  EXPECT_EQ(a.to_string(), "74.125.1.1");
  EXPECT_EQ(a.octet(0), 74);
  EXPECT_EQ(a.octet(3), 1);
  EXPECT_EQ(Ipv4Address::from_octets(74, 125, 1, 1), a);
}

TEST(Ipv4Address, RejectsMalformedInput) {
  EXPECT_FALSE(Ipv4Address::try_parse(""));
  EXPECT_FALSE(Ipv4Address::try_parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::try_parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::try_parse("1.2.3.256"));
  EXPECT_FALSE(Ipv4Address::try_parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Address::try_parse("a.b.c.d"));
  EXPECT_THROW(Ipv4Address::parse("nope"), std::invalid_argument);
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address::parse("1.0.0.0"), Ipv4Address::parse("2.0.0.0"));
  EXPECT_LT(Ipv4Address::parse("9.255.255.255"),
            Ipv4Address::parse("10.0.0.0"));
}

TEST(Ipv4Prefix, NormalizesHostBits) {
  Ipv4Prefix p(Ipv4Address::parse("10.1.2.3"), 8);
  EXPECT_EQ(p.to_string(), "10.0.0.0/8");
  EXPECT_EQ(p.network(), Ipv4Address::parse("10.0.0.0"));
}

TEST(Ipv4Prefix, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Ipv4Prefix::try_parse("10.0.0.0"));
  EXPECT_FALSE(Ipv4Prefix::try_parse("10.0.0.0/33"));
  EXPECT_FALSE(Ipv4Prefix::try_parse("10.0.0.0/"));
  EXPECT_FALSE(Ipv4Prefix::try_parse("10.0.0.0/8x"));
  EXPECT_TRUE(Ipv4Prefix::try_parse("0.0.0.0/0"));
}

TEST(Ipv4Prefix, ContainmentAndOverlap) {
  auto p8 = Ipv4Prefix::parse("10.0.0.0/8");
  auto p16 = Ipv4Prefix::parse("10.20.0.0/16");
  auto other = Ipv4Prefix::parse("11.0.0.0/8");
  EXPECT_TRUE(p8.contains(p16));
  EXPECT_FALSE(p16.contains(p8));
  EXPECT_TRUE(p8.contains(p8));
  EXPECT_TRUE(p8.overlaps(p16));
  EXPECT_FALSE(p8.overlaps(other));
  EXPECT_TRUE(p8.contains(Ipv4Address::parse("10.255.0.1")));
  EXPECT_FALSE(p8.contains(Ipv4Address::parse("11.0.0.1")));
}

TEST(Ipv4Prefix, IntersectionIsTheMoreSpecific) {
  auto p8 = Ipv4Prefix::parse("10.0.0.0/8");
  auto p16 = Ipv4Prefix::parse("10.20.0.0/16");
  EXPECT_EQ(p8.intersect(p16), p16);
  EXPECT_EQ(p16.intersect(p8), p16);
  EXPECT_EQ(p8.intersect(Ipv4Prefix::parse("12.0.0.0/8")), std::nullopt);
}

TEST(Ipv4Prefix, HalfSpacesFromThePaper) {
  // Paper §3.1: AS B splits traffic on srcip 0.0.0.0/1 vs 128.0.0.0/1.
  auto low = Ipv4Prefix::parse("0.0.0.0/1");
  auto high = Ipv4Prefix::parse("128.0.0.0/1");
  EXPECT_TRUE(low.contains(Ipv4Address::parse("96.25.160.1")));
  EXPECT_TRUE(high.contains(Ipv4Address::parse("128.125.163.1")));
  EXPECT_FALSE(low.overlaps(high));
  EXPECT_EQ(low.size() + high.size(), std::uint64_t{1} << 32);
}

TEST(Ipv4Prefix, AddressRange) {
  auto p = Ipv4Prefix::parse("192.168.4.0/22");
  EXPECT_EQ(p.first_address().to_string(), "192.168.4.0");
  EXPECT_EQ(p.last_address().to_string(), "192.168.7.255");
  EXPECT_EQ(p.size(), 1024u);
}

TEST(MacAddress, ParseFormatRoundTrip) {
  auto m = MacAddress::parse("Aa:bB:cC:00:01:ff");
  EXPECT_EQ(m.to_string(), "aa:bb:cc:00:01:ff");
  EXPECT_EQ(m.octet(0), 0xaa);
  EXPECT_EQ(m.octet(5), 0xff);
}

TEST(MacAddress, RejectsMalformedInput) {
  EXPECT_FALSE(MacAddress::try_parse("aa:bb:cc:00:01"));
  EXPECT_FALSE(MacAddress::try_parse("aa-bb-cc-00-01-ff"));
  EXPECT_FALSE(MacAddress::try_parse("aa:bb:cc:00:01:fg"));
  EXPECT_FALSE(MacAddress::try_parse(""));
}

TEST(MacAddress, MasksTo48Bits) {
  MacAddress m(0xFFFF'AABB'CCDD'EEFFull);
  EXPECT_EQ(m.bits(), 0xAABB'CCDD'EEFFull);
}

TEST(MacAddress, LocallyAdministeredBit) {
  EXPECT_TRUE(MacAddress(0x02'00'00'00'00'01ull).locally_administered());
  EXPECT_FALSE(MacAddress(0x00'00'00'00'00'01ull).locally_administered());
}

TEST(AsPath, BasicAccessorsAndPrepend) {
  AsPath p{100, 200, 43515};
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(p.first(), 100u);
  EXPECT_EQ(p.origin_as(), 43515u);
  EXPECT_TRUE(p.contains(200));
  EXPECT_FALSE(p.contains(300));
  AsPath q = p.prepended(65000);
  EXPECT_EQ(q.to_string(), "65000 100 200 43515");
  EXPECT_EQ(p.to_string(), "100 200 43515");  // prepended() is pure
}

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(Ipv4Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(Ipv4Prefix::parse("10.0.0.0/8"), 2));  // overwrite
  EXPECT_EQ(*trie.find(Ipv4Prefix::parse("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.find(Ipv4Prefix::parse("10.0.0.0/9")), nullptr);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_TRUE(trie.erase(Ipv4Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(Ipv4Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, LongestPrefixMatch) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix::parse("0.0.0.0/0"), 0);
  trie.insert(Ipv4Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(Ipv4Prefix::parse("10.20.0.0/16"), 16);
  trie.insert(Ipv4Prefix::parse("10.20.30.0/24"), 24);

  auto hit = trie.lookup(Ipv4Address::parse("10.20.30.40"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 24);
  EXPECT_EQ(hit->first.to_string(), "10.20.30.0/24");

  hit = trie.lookup(Ipv4Address::parse("10.20.99.1"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 16);

  hit = trie.lookup(Ipv4Address::parse("10.99.0.1"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 8);

  hit = trie.lookup(Ipv4Address::parse("99.0.0.1"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 0);
}

TEST(PrefixTrie, LookupWithoutDefaultRouteCanMiss) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix::parse("10.0.0.0/8"), 8);
  EXPECT_FALSE(trie.lookup(Ipv4Address::parse("11.0.0.1")).has_value());
}

TEST(PrefixTrie, ForEachVisitsAllInOrder) {
  PrefixTrie<int> trie;
  std::vector<std::string> inserted = {"10.0.0.0/8", "10.128.0.0/9",
                                       "192.168.0.0/16", "0.0.0.0/0"};
  for (std::size_t i = 0; i < inserted.size(); ++i) {
    trie.insert(Ipv4Prefix::parse(inserted[i]), static_cast<int>(i));
  }
  std::vector<std::string> seen;
  trie.for_each([&](Ipv4Prefix p, int) { seen.push_back(p.to_string()); });
  EXPECT_EQ(seen, (std::vector<std::string>{"0.0.0.0/0", "10.0.0.0/8",
                                            "10.128.0.0/9",
                                            "192.168.0.0/16"}));
}

TEST(PrefixTrie, ForEachCoveringVisitsEveryCoveringPrefix) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix::parse("0.0.0.0/0"), 1);
  trie.insert(Ipv4Prefix::parse("10.0.0.0/8"), 2);
  trie.insert(Ipv4Prefix::parse("10.20.0.0/16"), 4);
  trie.insert(Ipv4Prefix::parse("10.20.30.0/24"), 8);
  trie.insert(Ipv4Prefix::parse("192.168.0.0/16"), 16);

  int acc = 0;
  trie.for_each_covering(Ipv4Address::parse("10.20.30.40"),
                         [&](int v) { acc |= v; });
  EXPECT_EQ(acc, 1 | 2 | 4 | 8);  // everything on the path, nothing else

  acc = 0;
  trie.for_each_covering(Ipv4Address::parse("10.99.0.1"),
                         [&](int v) { acc |= v; });
  EXPECT_EQ(acc, 1 | 2);

  acc = 0;
  trie.for_each_covering(Ipv4Address::parse("172.16.0.1"),
                         [&](int v) { acc |= v; });
  EXPECT_EQ(acc, 1);
}

TEST(FieldMatch, CidrPrefixLengthRecognizesOnlyCidrMasks) {
  EXPECT_EQ(FieldMatch::wildcard().cidr_prefix_length(), 0);
  EXPECT_EQ(FieldMatch::prefix(Ipv4Prefix::parse("10.0.0.0/8"))
                .cidr_prefix_length(),
            8);
  EXPECT_EQ(FieldMatch::prefix(Ipv4Prefix::parse("10.1.2.3/32"))
                .cidr_prefix_length(),
            32);
  // A full 64-bit exact mask is not an IPv4 CIDR shape.
  EXPECT_EQ(FieldMatch::exact(80).cidr_prefix_length(), std::nullopt);
  // Non-contiguous and non-high-aligned masks are rejected.
  EXPECT_EQ(FieldMatch::masked(0, 0x00FF0000).cidr_prefix_length(),
            std::nullopt);
  EXPECT_EQ(FieldMatch::masked(0, 0xF0F00000).cidr_prefix_length(),
            std::nullopt);
  // The all-ones 32-bit mask is /32.
  EXPECT_EQ(FieldMatch::masked(1, 0xFFFFFFFFull).cidr_prefix_length(), 32);
}

TEST(PrefixTrie, RandomizedLpmAgainstLinearScan) {
  SplitMix64 rng(42);
  PrefixTrie<int> trie;
  std::vector<Ipv4Prefix> prefixes;
  for (int i = 0; i < 500; ++i) {
    Ipv4Prefix p(Ipv4Address(static_cast<std::uint32_t>(rng())),
                 static_cast<int>(rng.range(1, 28)));
    if (trie.insert(p, i)) prefixes.push_back(p);
  }
  for (int i = 0; i < 2000; ++i) {
    Ipv4Address addr(static_cast<std::uint32_t>(rng()));
    std::optional<Ipv4Prefix> best;
    for (auto p : prefixes) {
      if (p.contains(addr) && (!best || p.length() > best->length())) {
        best = p;
      }
    }
    auto hit = trie.lookup(addr);
    ASSERT_EQ(hit.has_value(), best.has_value());
    if (best) {
      EXPECT_EQ(hit->first, *best);
    }
  }
}

TEST(PrefixTrie, ModelFuzzWithInsertEraseLookup) {
  // Model-based fuzz against std::map: random insert/overwrite/erase
  // interleaved with exact-find and LPM queries.
  SplitMix64 rng(2718);
  PrefixTrie<int> trie;
  std::map<Ipv4Prefix, int> model;
  auto random_prefix = [&rng]() {
    return Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(
                          rng.below(16) << 28)),
                      static_cast<int>(rng.range(0, 8)));
  };
  for (int step = 0; step < 3000; ++step) {
    const auto p = random_prefix();
    switch (rng.below(3)) {
      case 0: {
        const int v = static_cast<int>(rng.below(1000));
        const bool fresh_trie = trie.insert(p, v);
        const bool fresh_model = model.insert_or_assign(p, v).second;
        ASSERT_EQ(fresh_trie, fresh_model);
        break;
      }
      case 1:
        ASSERT_EQ(trie.erase(p), model.erase(p) > 0);
        break;
      default: {
        const int* found = trie.find(p);
        auto it = model.find(p);
        ASSERT_EQ(found != nullptr, it != model.end());
        if (found != nullptr) {
          ASSERT_EQ(*found, it->second);
        }
        // LPM vs linear scan over the model.
        const Ipv4Address addr(static_cast<std::uint32_t>(rng()));
        auto hit = trie.lookup(addr);
        std::optional<Ipv4Prefix> best;
        for (const auto& [mp, _] : model) {
          if (mp.contains(addr) &&
              (!best || mp.length() > best->length())) {
            best = mp;
          }
        }
        ASSERT_EQ(hit.has_value(), best.has_value());
        if (best) {
          ASSERT_EQ(hit->first, *best);
          ASSERT_EQ(*hit->second, model.at(*best));
        }
        break;
      }
    }
    ASSERT_EQ(trie.size(), model.size());
  }
}

TEST(FieldMatch, SubsumesAgreesWithMatchSemantics) {
  // Property: a.subsumes(b) ⇔ every value matching b also matches a —
  // verified by sampling within the small universes our fields use.
  SplitMix64 rng(31415);
  auto random_fm = [&rng]() {
    switch (rng.below(3)) {
      case 0: return FieldMatch::wildcard();
      case 1: return FieldMatch::exact(rng.below(8));
      default:
        return FieldMatch::prefix(Ipv4Prefix(
            Ipv4Address(static_cast<std::uint32_t>(rng.below(8) << 29)),
            static_cast<int>(rng.range(0, 3))));
    }
  };
  for (int trial = 0; trial < 500; ++trial) {
    const FieldMatch a = random_fm();
    const FieldMatch b = random_fm();
    bool counterexample = false;
    for (int s = 0; s < 64 && !counterexample; ++s) {
      const std::uint64_t v = rng.chance(0.5)
                                  ? rng.below(8)
                                  : (rng.below(8) << 29);
      if (b.matches(v) && !a.matches(v)) counterexample = true;
    }
    if (a.subsumes(b)) {
      EXPECT_FALSE(counterexample);
    }
    // (The sampled converse is not asserted: absence of a sampled
    // counterexample does not prove subsumption.)
  }
}

TEST(FieldMatch, WildcardMatchesEverything) {
  FieldMatch w;
  EXPECT_TRUE(w.is_wildcard());
  EXPECT_TRUE(w.matches(0));
  EXPECT_TRUE(w.matches(~std::uint64_t{0}));
}

TEST(FieldMatch, ExactAndPrefixSemantics) {
  auto e = FieldMatch::exact(80);
  EXPECT_TRUE(e.matches(80));
  EXPECT_FALSE(e.matches(443));

  auto p = FieldMatch::prefix(Ipv4Prefix::parse("10.0.0.0/8"));
  EXPECT_TRUE(p.matches(Ipv4Address::parse("10.1.2.3").value()));
  EXPECT_FALSE(p.matches(Ipv4Address::parse("11.1.2.3").value()));
}

TEST(FieldMatch, IntersectNestsPrefixes) {
  auto p8 = FieldMatch::prefix(Ipv4Prefix::parse("10.0.0.0/8"));
  auto p16 = FieldMatch::prefix(Ipv4Prefix::parse("10.20.0.0/16"));
  auto both = p8.intersect(p16);
  ASSERT_TRUE(both.has_value());
  EXPECT_EQ(*both, p16);
  auto disjoint =
      p16.intersect(FieldMatch::prefix(Ipv4Prefix::parse("10.21.0.0/16")));
  EXPECT_FALSE(disjoint.has_value());
}

TEST(FieldMatch, SubsumptionIsReflexiveAndDirectional) {
  auto p8 = FieldMatch::prefix(Ipv4Prefix::parse("10.0.0.0/8"));
  auto p16 = FieldMatch::prefix(Ipv4Prefix::parse("10.20.0.0/16"));
  EXPECT_TRUE(p8.subsumes(p16));
  EXPECT_FALSE(p16.subsumes(p8));
  EXPECT_TRUE(p8.subsumes(p8));
  EXPECT_TRUE(FieldMatch::wildcard().subsumes(p8));
  EXPECT_FALSE(p8.subsumes(FieldMatch::wildcard()));
}

TEST(FlowMatch, MatchesConjunction) {
  FlowMatch m = FlowMatch::on(Field::kDstPort, 80)
                    .with_prefix(Field::kDstIp,
                                 Ipv4Prefix::parse("74.125.0.0/16"));
  auto hit = PacketBuilder().dst_ip("74.125.1.1").dst_port(80).build();
  auto miss_port = PacketBuilder().dst_ip("74.125.1.1").dst_port(443).build();
  auto miss_ip = PacketBuilder().dst_ip("8.8.8.8").dst_port(80).build();
  EXPECT_TRUE(m.matches(hit));
  EXPECT_FALSE(m.matches(miss_port));
  EXPECT_FALSE(m.matches(miss_ip));
}

TEST(FlowMatch, IntersectAgreesWithMatchSemantics) {
  SplitMix64 rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    auto random_match = [&rng]() {
      FlowMatch m;
      if (rng.chance(0.5)) {
        m.with(Field::kDstPort, rng.range(0, 3));
      }
      if (rng.chance(0.5)) {
        m.with_prefix(Field::kDstIp,
                      Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(
                                     rng.range(0, 3) << 30)),
                                 static_cast<int>(rng.range(0, 4))));
      }
      if (rng.chance(0.3)) {
        m.with(Field::kPort, rng.range(0, 2));
      }
      return m;
    };
    FlowMatch a = random_match();
    FlowMatch b = random_match();
    auto meet = a.intersect(b);
    for (int i = 0; i < 20; ++i) {
      PacketHeader h = PacketBuilder()
                           .port(static_cast<PortId>(rng.range(0, 2)))
                           .dst_ip(Ipv4Address(static_cast<std::uint32_t>(
                               rng.range(0, 3) << 30)))
                           .dst_port(rng.range(0, 3))
                           .build();
      const bool expect = a.matches(h) && b.matches(h);
      const bool got = meet.has_value() && meet->matches(h);
      EXPECT_EQ(expect, got) << a.to_string() << " ∩ " << b.to_string();
    }
  }
}

TEST(FlowMatch, ToStringListsConstrainedFields) {
  FlowMatch m = FlowMatch::on(Field::kDstPort, 80);
  EXPECT_EQ(m.to_string(), "match(dstport=80)");
  EXPECT_EQ(FlowMatch::any().to_string(), "match(*)");
}

TEST(Rng, DeterministicAcrossInstances) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, BelowStaysInRange) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
    auto v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    auto u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(PacketHeader, GenericAndTypedAccessorsAgree) {
  PacketHeader h;
  h.set_dst_ip(Ipv4Address::parse("1.2.3.4"));
  EXPECT_EQ(h.get(Field::kDstIp), Ipv4Address::parse("1.2.3.4").value());
  h.set(Field::kDstMac, 0xBEEF);
  EXPECT_EQ(h.dst_mac(), MacAddress(0xBEEF));
}

}  // namespace
}  // namespace sdx::net
