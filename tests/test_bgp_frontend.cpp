/// Integration tests for the wire-level BGP frontend: controller
/// re-advertisements travel through real framed sessions into router FIBs,
/// and the result matches the runtime's direct distribution path exactly.

#include <gtest/gtest.h>

#include <algorithm>

#include "sdx/bgp_frontend.hpp"
#include "sdx/runtime.hpp"

namespace sdx::core {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;

TEST(BgpFrontendTest, HandshakeAndUpdateDelivery) {
  BgpFrontend frontend;
  dp::BorderRouter router(65001, 1, net::MacAddress(0x11),
                          Ipv4Address::parse("10.0.0.1"));
  frontend.connect(1, router);
  EXPECT_TRUE(frontend.established(1));

  bgp::UpdateMessage u;
  bgp::RouteAttributes attrs;
  attrs.as_path = net::AsPath{64999, 65002};
  attrs.next_hop = Ipv4Address::parse("172.16.0.1");
  u.attrs = attrs;
  u.nlri = {Ipv4Prefix::parse("100.1.0.0/16")};
  const std::size_t bytes = frontend.distribute(1, u);
  EXPECT_GT(bytes, 19u);
  ASSERT_EQ(router.rib().size(), 1u);
  EXPECT_EQ(router.rib().find(Ipv4Prefix::parse("100.1.0.0/16"))
                ->attrs.next_hop,
            Ipv4Address::parse("172.16.0.1"));

  // Withdrawal removes the entry again.
  bgp::UpdateMessage w;
  w.withdrawn = {Ipv4Prefix::parse("100.1.0.0/16")};
  frontend.distribute(1, w);
  EXPECT_EQ(router.rib().size(), 0u);
}

TEST(BgpFrontendTest, RejectsDuplicateAndUnknownParticipants) {
  BgpFrontend frontend;
  dp::BorderRouter router(65001, 1, net::MacAddress(0x11),
                          Ipv4Address::parse("10.0.0.1"));
  frontend.connect(1, router);
  EXPECT_THROW(frontend.connect(1, router), std::invalid_argument);
  EXPECT_THROW(frontend.distribute(9, bgp::UpdateMessage{}),
               std::out_of_range);
  EXPECT_FALSE(frontend.established(9));
}

TEST(BgpFrontendTest, KeepalivesSurviveLongIdlePeriods) {
  BgpFrontend frontend;
  dp::BorderRouter router(65001, 1, net::MacAddress(0x11),
                          Ipv4Address::parse("10.0.0.1"));
  frontend.connect(1, router);
  for (int tick = 0; tick < 30; ++tick) {
    EXPECT_TRUE(frontend.advance_clock(10.0).empty());
  }
  EXPECT_TRUE(frontend.established(1));
}

TEST(BgpFrontendTest, CountsDistributionBytesButNotHandshakes) {
  BgpFrontend frontend;
  dp::BorderRouter r1(65001, 1, net::MacAddress(0x11),
                      Ipv4Address::parse("10.0.0.1"));
  dp::BorderRouter r2(65002, 2, net::MacAddress(0x22),
                      Ipv4Address::parse("10.0.0.2"));
  frontend.connect(1, r1);
  frontend.connect(2, r2);
  // Handshake traffic (OPEN/KEEPALIVE) is not distribution.
  EXPECT_EQ(frontend.bytes_distributed(), 0u);

  bgp::UpdateMessage u;
  bgp::RouteAttributes attrs;
  attrs.as_path = net::AsPath{64999, 65002};
  attrs.next_hop = Ipv4Address::parse("172.16.0.1");
  u.attrs = attrs;
  u.nlri = {Ipv4Prefix::parse("100.1.0.0/16")};
  const std::size_t first = frontend.distribute(1, u);
  EXPECT_EQ(frontend.bytes_distributed(), first);
  const std::size_t broadcast = frontend.distribute_all(u);
  EXPECT_EQ(frontend.bytes_distributed(), first + broadcast);
  EXPECT_GE(broadcast, 2 * first);  // two peers, same frame each way
  EXPECT_EQ(frontend.updates_distributed(), 3u);
}

TEST(BgpFrontendTest, HoldTimerExpiryDropsAndTearsDownSessions) {
  BgpFrontend frontend;
  dp::BorderRouter r1(65001, 1, net::MacAddress(0x11),
                      Ipv4Address::parse("10.0.0.1"));
  dp::BorderRouter r2(65002, 2, net::MacAddress(0x22),
                      Ipv4Address::parse("10.0.0.2"));
  frontend.connect(1, r1);
  frontend.connect(2, r2);

  // One jump past the 90 s hold time expires both sessions at once.
  auto dropped = frontend.advance_clock(1000.0);
  std::sort(dropped.begin(), dropped.end());
  EXPECT_EQ(dropped, (std::vector<ParticipantId>{1, 2}));
  EXPECT_EQ(frontend.session_drops(), 2u);
  EXPECT_FALSE(frontend.established(1));
  EXPECT_FALSE(frontend.established(2));
  // The links are torn down, not left as zombies: nothing re-reports, and
  // distribution to a dropped peer is a hard error until reconnect.
  EXPECT_TRUE(frontend.advance_clock(1000.0).empty());
  EXPECT_EQ(frontend.session_drops(), 2u);
  EXPECT_THROW(frontend.distribute(1, bgp::UpdateMessage{}),
               std::out_of_range);
  frontend.connect(1, r1);
  EXPECT_TRUE(frontend.established(1));
}

TEST(BgpFrontendTest, AutoReconnectRedialsDroppedSessions) {
  BgpFrontend frontend;
  frontend.enable_auto_reconnect();
  EXPECT_TRUE(frontend.auto_reconnect());
  dp::BorderRouter router(65001, 1, net::MacAddress(0x11),
                          Ipv4Address::parse("10.0.0.1"));
  frontend.connect(1, router);

  // A jump far past the hold time drops the session; the backoff (1 s
  // default) has also long elapsed within the same jump, so the redial
  // happens in the same clock advance.
  const auto dropped = frontend.advance_clock(1000.0);
  EXPECT_EQ(dropped, (std::vector<ParticipantId>{1}));
  EXPECT_EQ(frontend.session_drops(), 1u);
  EXPECT_TRUE(frontend.established(1));
  EXPECT_EQ(frontend.reconnects(), 1u);
  EXPECT_EQ(frontend.pending_reconnects(), 0u);

  // The re-established transport carries updates again.
  bgp::UpdateMessage u;
  bgp::RouteAttributes attrs;
  attrs.as_path = net::AsPath{64999, 65002};
  attrs.next_hop = Ipv4Address::parse("172.16.0.1");
  u.attrs = attrs;
  u.nlri = {Ipv4Prefix::parse("100.1.0.0/16")};
  frontend.distribute(1, u);
  EXPECT_EQ(router.rib().size(), 1u);
}

TEST(BgpFrontendTest, AutoReconnectWaitsOutTheConfiguredBackoff) {
  BgpFrontend frontend;
  BgpFrontend::ReconnectPolicy policy;
  policy.initial_backoff_seconds = 200.0;
  frontend.enable_auto_reconnect(policy);
  dp::BorderRouter router(65001, 1, net::MacAddress(0x11),
                          Ipv4Address::parse("10.0.0.1"));
  frontend.connect(1, router);

  // Drop just past the 90 s hold time: 200 s of backoff minus the 91 s
  // already elapsed leaves the redial pending.
  ASSERT_EQ(frontend.advance_clock(91.0).size(), 1u);
  EXPECT_FALSE(frontend.established(1));
  EXPECT_EQ(frontend.pending_reconnects(), 1u);
  EXPECT_EQ(frontend.reconnects(), 0u);

  frontend.advance_clock(50.0);  // 141 s elapsed: still waiting
  EXPECT_FALSE(frontend.established(1));
  EXPECT_EQ(frontend.pending_reconnects(), 1u);

  frontend.advance_clock(60.0);  // 201 s: backoff elapsed, redial fires
  EXPECT_TRUE(frontend.established(1));
  EXPECT_EQ(frontend.reconnects(), 1u);
  EXPECT_EQ(frontend.pending_reconnects(), 0u);
  // A healthy reconnected session keeps ticking without re-dropping.
  EXPECT_TRUE(frontend.advance_clock(10.0).empty());
}

TEST(BgpFrontendTest, RuntimeAutoReconnectRestoresWireTransport) {
  SdxRuntime rt;
  rt.use_wire_distribution();
  auto a = rt.add_participant("A", 65001);
  rt.enable_frontend_auto_reconnect();
  rt.announce(a, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65001});
  rt.install();

  // The drop still runs session_down (routes withdrawn, surfaced to the
  // caller), but the transport comes back on its own.
  const auto dropped = rt.advance_clock(1000.0);
  EXPECT_EQ(dropped, (std::vector<ParticipantId>{a}));
  ASSERT_NE(rt.frontend(), nullptr);
  EXPECT_TRUE(rt.frontend()->established(a));
  EXPECT_EQ(rt.frontend()->reconnects(), 1u);

  // The redial is visible in the shared ingest telemetry series.
  const auto metrics = rt.dump_metrics();
  EXPECT_NE(metrics.find("sdx_ingest_reconnects_total 1"),
            std::string::npos);

  // Re-announcing over the restored transport reaches the router again.
  rt.announce(a, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65001});
  EXPECT_TRUE(rt.frontend()->established(a));
}

TEST(BgpFrontendTest, RuntimeAutoReconnectRequiresWireDistribution) {
  SdxRuntime rt;
  EXPECT_THROW(rt.enable_frontend_auto_reconnect(), std::logic_error);
}

TEST(BgpFrontendTest, WireDistributionMatchesDirectPath) {
  // Build the same exchange twice: once distributing FIBs through the
  // runtime's direct path, once re-playing the runtime's advertisements
  // through wire sessions into shadow routers. FIB contents must agree.
  SdxRuntime rt;
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  auto c = rt.add_participant("C", 65003);
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65002, 9});
  rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
  rt.announce(c, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65003});
  rt.install();

  BgpFrontend frontend;
  std::vector<dp::BorderRouter> shadows;
  shadows.reserve(3);
  for (auto id : {a, b, c}) {
    const auto& port = rt.participant(id).primary_port();
    shadows.emplace_back(rt.participant(id).asn, port.id + 100,
                         port.router_mac, port.router_ip);
  }
  std::size_t i = 0;
  for (auto id : {a, b, c}) frontend.connect(id, shadows[i++]);

  // Re-derive each participant's advertisements from the controller state
  // and push them through the wire.
  for (auto prefix : rt.route_server().all_prefixes()) {
    i = 0;
    for (auto id : {a, b, c}) {
      auto best = rt.route_server().best_route(id, prefix);
      bgp::UpdateMessage msg;
      if (best) {
        bgp::RouteAttributes attrs = best->attrs;
        if (auto binding = rt.compiled().binding_for(prefix)) {
          attrs.next_hop = binding->vnh;
        }
        msg.attrs = std::move(attrs);
        msg.nlri.push_back(prefix);
      } else {
        msg.withdrawn.push_back(prefix);
      }
      frontend.distribute(id, msg);
      ++i;
    }
  }

  // Shadow FIBs must equal the directly-fed router FIBs.
  i = 0;
  for (auto id : {a, b, c}) {
    const auto& direct = rt.router(id).rib();
    const auto& shadow = shadows[i++].rib();
    ASSERT_EQ(direct.size(), shadow.size()) << "participant " << id;
    direct.for_each([&shadow, id](const bgp::Route& r) {
      const bgp::Route* s = shadow.find(r.prefix);
      ASSERT_NE(s, nullptr) << r.prefix.to_string();
      EXPECT_EQ(s->attrs, r.attrs) << "participant " << id;
    });
  }
  EXPECT_EQ(frontend.updates_distributed(), 6u);  // 2 prefixes × 3 peers
}

TEST(BgpFrontendTest, RuntimeWireModeBehavesIdenticallyToDirectMode) {
  // Two identically-configured runtimes — one distributing in-process, one
  // through framed sessions — must deliver identical traffic outcomes.
  auto build = [](bool wire) {
    auto rt = std::make_unique<SdxRuntime>();
    if (wire) rt->use_wire_distribution();
    auto a = rt->add_participant("A", 65001);
    auto b = rt->add_participant("B", 65002, 2);
    auto c = rt->add_participant("C", 65003);
    rt->set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
    rt->set_inbound(
        b, {InboundClause{ClauseMatch{}.src(Ipv4Prefix::parse("0.0.0.0/1")),
                          {},
                          1}});
    rt->announce(b, Ipv4Prefix::parse("100.1.0.0/16"),
                 net::AsPath{65002, 9});
    rt->announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
    rt->install();
    // Churn after install exercises the fast path over the wire too.
    rt->withdraw(c, Ipv4Prefix::parse("100.1.0.0/16"));
    rt->announce(c, Ipv4Prefix::parse("100.1.0.0/16"),
                 net::AsPath{65003});
    return rt;
  };
  auto direct = build(false);
  auto wire = build(true);
  EXPECT_TRUE(wire->wire_distribution());
  EXPECT_GT(wire->frontend()->updates_distributed(), 0u);

  for (const char* src : {"96.25.160.5", "200.1.1.1"}) {
    for (std::uint64_t port : {80u, 53u}) {
      auto payload = net::PacketBuilder()
                         .src_ip(src)
                         .dst_ip("100.1.2.3")
                         .proto(net::kProtoTcp)
                         .dst_port(port)
                         .build();
      auto d = direct->send(1, payload);
      auto w = wire->send(1, payload);
      ASSERT_EQ(d.size(), w.size()) << src << ":" << port;
      if (!d.empty()) {
        EXPECT_EQ(d[0].port, w[0].port);
        EXPECT_EQ(d[0].frame, w[0].frame);
      }
    }
  }
}

}  // namespace
}  // namespace sdx::core
