/// Tests for the paper-literal transformation chain (§4.1): isolation,
/// BGP-consistency augmentation, default forwarding, and the composed
/// reference policy SDX = (ΣPX'') >> (ΣPX'') — validated on the Figure 1
/// worked example and randomized against the oracle.

#include <gtest/gtest.h>

#include "netbase/rng.hpp"
#include "policy/compile.hpp"
#include "sdx/bgp_consistency.hpp"
#include "sdx/default_forwarding.hpp"
#include "sdx/isolation.hpp"
#include "sdx/oracle.hpp"

namespace sdx::core {
namespace {

using net::Field;
using net::Ipv4Address;
using net::Ipv4Prefix;
using net::PacketBuilder;
using net::PacketHeader;

/// Hand-built Figure 1 world (no SdxRuntime: the reference path models a
/// route server that does NOT rewrite next hops, so border routers tag
/// packets with real next-hop router MACs).
class ReferenceFigure1 : public ::testing::Test {
 protected:
  ReferenceFigure1()
      : p1(Ipv4Prefix::parse("100.1.0.0/16")),
        p2(Ipv4Prefix::parse("100.2.0.0/16")),
        p3(Ipv4Prefix::parse("100.3.0.0/16")),
        p4(Ipv4Prefix::parse("100.4.0.0/16")),
        p5(Ipv4Prefix::parse("100.5.0.0/16")) {
    auto make = [this](const char* name, net::Asn asn,
                       std::vector<net::PortId> port_ids) {
      Participant p;
      p.id = next_id_++;
      p.name = name;
      p.asn = asn;
      for (auto pid : port_ids) {
        PhysicalPort port;
        port.id = pid;
        port.router_mac = net::MacAddress(0x00'16'3E'00'00'00ull | pid);
        port.router_ip = Ipv4Address(
            Ipv4Address::parse("10.0.0.0").value() + pid);
        p.ports.push_back(port);
      }
      ports.register_participant(p.id, port_ids);
      server.add_peer({p.id, asn, p.primary_port().router_ip});
      participants.push_back(std::move(p));
      return participants.back().id;
    };
    a = make("A", 65001, {1});
    b = make("B", 65002, {2, 3});
    c = make("C", 65003, {4});

    participants[0].outbound = {
        OutboundClause{ClauseMatch{}.dst_port(80), b},
        OutboundClause{ClauseMatch{}.dst_port(443), c}};
    participants[1].inbound = {
        InboundClause{ClauseMatch{}.src(Ipv4Prefix::parse("0.0.0.0/1")),
                      {},
                      0},
        InboundClause{ClauseMatch{}.src(Ipv4Prefix::parse("128.0.0.0/1")),
                      {},
                      1}};

    announce(b, p1, {65002, 900, 800, 10});
    announce(b, p2, {65002, 900, 800, 20});
    announce(b, p3, {65002, 30});
    announce(c, p1, {65003, 10});
    announce(c, p2, {65003, 20});
    announce(c, p3, {65003, 700, 600, 30});
    announce(c, p4, {65003, 40});
    announce(a, p5, {65001, 50});
  }

  void announce(ParticipantId from, Ipv4Prefix prefix,
                std::initializer_list<net::Asn> path) {
    const Participant* p = nullptr;
    for (const auto& q : participants) {
      if (q.id == from) p = &q;
    }
    bgp::Route r;
    r.prefix = prefix;
    r.attrs.as_path = net::AsPath(path);
    r.attrs.next_hop = p->primary_port().router_ip;
    r.learned_from = from;
    r.peer_router_id = p->primary_port().router_ip;
    server.announce(std::move(r));
  }

  /// Builds the frame as an unmodified border router would: destination
  /// MAC = MAC of the BGP next hop's router port.
  std::optional<PacketHeader> frame_from(ParticipantId sender,
                                         PacketHeader payload) {
    auto route = server.best_route_lpm(sender, payload.dst_ip());
    if (!route) return std::nullopt;
    const PhysicalPort* nh = nullptr;
    for (const auto& q : participants) {
      for (const auto& port : q.ports) {
        if (port.router_ip == route->attrs.next_hop) nh = &port;
      }
    }
    if (nh == nullptr) return std::nullopt;
    const Participant* s = nullptr;
    for (const auto& q : participants) {
      if (q.id == sender) s = &q;
    }
    payload.set_port(s->primary_port().id);
    payload.set_src_mac(s->primary_port().router_mac);
    payload.set_dst_mac(nh->router_mac);
    payload.set(Field::kEthType, net::kEthTypeIpv4);
    return payload;
  }

  PacketHeader packet(const char* src, Ipv4Prefix dst_block,
                      std::uint64_t dst_port) {
    return PacketBuilder()
        .src_ip(src)
        .dst_ip(Ipv4Address(dst_block.network().value() + 0x0101))
        .proto(net::kProtoTcp)
        .dst_port(dst_port)
        .build();
  }

  std::vector<Participant> participants;
  PortMap ports;
  bgp::RouteServer server;
  ParticipantId a = 0, b = 0, c = 0;
  Ipv4Prefix p1, p2, p3, p4, p5;
  ParticipantId next_id_ = 1;
};

TEST_F(ReferenceFigure1, IsolationRestrictsPolicyToOwnPorts) {
  const auto& A = participants[0];
  policy::Policy pa = isolate_outbound(outbound_policy(A, ports), A, ports);
  auto at_a = packet("1.1.1.1", p1, 80);
  at_a.set_port(A.primary_port().id);
  EXPECT_FALSE(pa.eval(at_a).empty());
  // The same packet at B's port must not be touched by A's policy.
  auto at_b = at_a;
  at_b.set_port(participants[1].primary_port().id);
  EXPECT_TRUE(pa.eval(at_b).empty());
}

TEST_F(ReferenceFigure1, BgpAugmentationFiltersUnexportedPrefixes) {
  const auto& A = participants[0];
  policy::Policy pa = augment_with_bgp(
      isolate_outbound(outbound_policy(A, ports), A, ports), A.id, server,
      ports);
  // Web traffic to p1 (B exported it) passes; to p4 (B did not) drops.
  auto ok = packet("1.1.1.1", p1, 80);
  ok.set_port(A.primary_port().id);
  auto out = pa.eval(ok);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), ports.vport(b));

  auto filtered = packet("1.1.1.1", p4, 80);
  filtered.set_port(A.primary_port().id);
  EXPECT_TRUE(pa.eval(filtered).empty());

  // HTTPS to p4 is fine — C exported it.
  auto https = packet("1.1.1.1", p4, 443);
  https.set_port(A.primary_port().id);
  out = pa.eval(https);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), ports.vport(c));
}

TEST_F(ReferenceFigure1, ReferencePolicyMatchesOracleOnScenarioTraffic) {
  policy::Policy sdx = reference_sdx_policy(participants, ports, server);
  policy::Classifier classifier = policy::compile(sdx);

  struct Case {
    ParticipantId sender;
    const char* src;
    Ipv4Prefix dst;
    std::uint64_t port;
  };
  const std::vector<Case> cases = {
      {a, "96.25.160.5", p1, 80},   // policy → B, inbound TE → B1
      {a, "200.1.1.1", p1, 80},     // policy → B, inbound TE → B2
      {a, "96.25.160.5", p2, 443},  // policy → C
      {a, "96.25.160.5", p1, 53},   // default → C
      {a, "96.25.160.5", p3, 53},   // default → B
      {a, "96.25.160.5", p4, 80},   // unexported: default → C
      {b, "1.2.3.4", p5, 80},       // default → A
      {c, "1.2.3.4", p3, 80},       // C → best B
      {b, "1.2.3.4", p4, 443},      // B → C
  };
  for (const auto& tc : cases) {
    PacketHeader payload = packet(tc.src, tc.dst, tc.port);
    auto frame = frame_from(tc.sender, payload);
    auto expected =
        oracle_forward(participants, ports, server, tc.sender, 0, payload);
    if (!frame) {
      EXPECT_TRUE(expected.empty());
      continue;
    }
    auto got = classifier.evaluate(*frame);
    // Drop hairpins the way the switch does.
    std::erase_if(got, [&frame](const PacketHeader& h) {
      return h.port() == frame->port();
    });
    ASSERT_EQ(got.size(), expected.size())
        << "sender=" << tc.sender << " " << payload.to_string();
    if (!expected.empty()) {
      EXPECT_EQ(got[0].port(), expected[0].egress) << payload.to_string();
      EXPECT_EQ(got[0].dst_ip(), expected[0].frame.dst_ip());
      EXPECT_EQ(got[0].dst_mac(), expected[0].frame.dst_mac())
          << payload.to_string();
    }
  }
}

TEST_F(ReferenceFigure1, ReferencePolicyMatchesOracleOnRandomTraffic) {
  policy::Policy sdx = reference_sdx_policy(participants, ports, server);
  policy::Classifier classifier = policy::compile(sdx);
  net::SplitMix64 rng(4242);
  std::vector<ParticipantId> senders{a, b, c};
  for (int trial = 0; trial < 300; ++trial) {
    const ParticipantId sender = senders[rng.below(3)];
    PacketHeader payload =
        PacketBuilder()
            .src_ip(Ipv4Address(static_cast<std::uint32_t>(rng())))
            .dst_ip(Ipv4Address(
                ((100u + static_cast<std::uint32_t>(rng.below(6))) << 24) |
                (1u << 16) | static_cast<std::uint32_t>(rng.below(65536))))
            .proto(net::kProtoTcp)
            .dst_port(rng.chance(0.3) ? 80
                                      : (rng.chance(0.3) ? 443 : 53))
            .build();
    auto frame = frame_from(sender, payload);
    auto expected =
        oracle_forward(participants, ports, server, sender, 0, payload);
    if (!frame) {
      EXPECT_TRUE(expected.empty()) << payload.to_string();
      continue;
    }
    auto got = classifier.evaluate(*frame);
    std::erase_if(got, [&frame](const PacketHeader& h) {
      return h.port() == frame->port();
    });
    ASSERT_EQ(got.size(), expected.size()) << payload.to_string();
    if (!expected.empty()) {
      EXPECT_EQ(got[0].port(), expected[0].egress) << payload.to_string();
      EXPECT_EQ(got[0].dst_mac(), expected[0].frame.dst_mac())
          << payload.to_string();
    }
  }
}

TEST_F(ReferenceFigure1, ReferenceCompilerRejectsRemoteParticipants) {
  Participant remote;
  remote.id = 99;
  remote.name = "remote";
  remote.asn = 65099;
  auto all = participants;
  all.push_back(remote);
  EXPECT_THROW(reference_sdx_policy(all, ports, server),
               std::invalid_argument);
}

}  // namespace
}  // namespace sdx::core
