/// Tests for the event-driven BGP ingest subsystem: reactor primitives,
/// spill-queue backpressure and DRR fairness, the loopback TCP path end
/// to end into an SdxRuntime (sessions, framing, FSM, telemetry), the
/// zero-drop guarantee under a queue sized far below the offered load,
/// client auto-reconnect across a listener restart, and MRT replay as an
/// ingest source (trace + RIB flavors, torn-tail reporting).

#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "bgp/mrt.hpp"
#include "ingest/mrt_source.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/reactor.hpp"
#include "ingest/replay_client.hpp"
#include "ingest/spill_queue.hpp"
#include "sdx/runtime.hpp"

namespace sdx::ingest {
namespace {

using namespace std::chrono_literals;

// --- Reactor ----------------------------------------------------------------

TEST(Reactor, DispatchesReadableFds) {
  Reactor reactor;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int fired = 0;
  reactor.add(fds[0], EPOLLIN, [&](std::uint32_t) {
    char buf[8];
    EXPECT_GT(::read(fds[0], buf, sizeof buf), 0);
    ++fired;
  });
  EXPECT_EQ(reactor.fd_count(), 1u);

  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  EXPECT_EQ(reactor.run_once(100), 1);
  EXPECT_EQ(fired, 1);

  // Nothing pending: poll times out with no dispatch.
  EXPECT_EQ(reactor.run_once(0), 0);

  reactor.remove(fds[0]);
  EXPECT_EQ(reactor.fd_count(), 0u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Reactor, PostedTasksRunOnTheReactorThread) {
  Reactor reactor;
  std::thread::id reactor_tid;
  std::atomic<bool> ran{false};
  std::thread t([&] {
    reactor_tid = std::this_thread::get_id();
    reactor.run();
  });
  std::thread::id posted_tid;
  reactor.post([&] {
    posted_tid = std::this_thread::get_id();
    ran = true;
    reactor.stop();
  });
  t.join();
  EXPECT_TRUE(ran);
  EXPECT_EQ(posted_tid, reactor_tid);
}

TEST(Reactor, TimersFireInDeadlineOrder) {
  Reactor reactor;
  std::vector<int> order;
  reactor.add_timer(0.02, [&] { order.push_back(2); });
  reactor.add_timer(0.005, [&] { order.push_back(1); });
  const auto cancelled = reactor.add_timer(0.01, [&] { order.push_back(99); });
  reactor.cancel_timer(cancelled);
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (order.size() < 2 && std::chrono::steady_clock::now() < deadline) {
    reactor.run_once(50);
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Reactor, RestartAfterStop) {
  Reactor reactor;
  reactor.stop();
  EXPECT_TRUE(reactor.stopped());
  reactor.restart();
  EXPECT_FALSE(reactor.stopped());
  std::atomic<bool> ran{false};
  std::thread t([&] { reactor.run(); });
  reactor.post([&] {
    ran = true;
    reactor.stop();
  });
  t.join();
  EXPECT_TRUE(ran);
}

// --- SpillQueue -------------------------------------------------------------

IngestedUpdate make_update(core::ParticipantId peer, unsigned seq) {
  IngestedUpdate u;
  u.participant = peer;
  bgp::RouteAttributes attrs;
  attrs.as_path = net::AsPath{65000 + peer};
  attrs.next_hop = net::Ipv4Address::parse("10.0.0.1");
  u.update.attrs = attrs;
  u.update.nlri = {net::Ipv4Prefix(
      net::Ipv4Address((198u << 24) | (peer << 16) | (seq << 8)), 24)};
  u.enqueued = std::chrono::steady_clock::now();
  return u;
}

TEST(SpillQueue, RefusesAtPeerQuotaAndReportsShed) {
  SpillQueue::Options opt;
  opt.capacity = 100;
  opt.per_peer_quota = 4;
  SpillQueue q(opt);
  for (unsigned i = 0; i < 4; ++i) {
    auto u = make_update(1, i);
    EXPECT_TRUE(q.try_push(1, u));
  }
  auto refused = make_update(1, 99);
  EXPECT_FALSE(q.try_push(1, refused));
  // Refused updates are left intact for stashing.
  EXPECT_EQ(refused.participant, 1u);
  EXPECT_FALSE(refused.update.nlri.empty());
  EXPECT_TRUE(q.blocked(1));
  EXPECT_EQ(q.shed_events(), 1u);
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.peer_depth(1), 4u);
  // Another peer still has room under the global bound.
  auto other = make_update(2, 0);
  EXPECT_TRUE(q.try_push(2, other));
  EXPECT_EQ(q.drops(), 0u);
}

TEST(SpillQueue, RefusesAtGlobalCapacity) {
  SpillQueue::Options opt;
  opt.capacity = 6;
  opt.per_peer_quota = 100;
  SpillQueue q(opt);
  for (unsigned i = 0; i < 6; ++i) {
    auto u = make_update(1 + (i % 3), i);
    EXPECT_TRUE(q.try_push(1 + (i % 3), u));
  }
  auto refused = make_update(9, 0);
  EXPECT_FALSE(q.try_push(9, refused));
  EXPECT_TRUE(q.blocked(9));
}

TEST(SpillQueue, SpaceCallbackFiresOnceDrainedBelowWatermark) {
  SpillQueue::Options opt;
  opt.capacity = 8;
  opt.per_peer_quota = 8;
  opt.drr_quantum = 8;
  SpillQueue q(opt);
  for (unsigned i = 0; i < 8; ++i) {
    auto u = make_update(1, i);
    ASSERT_TRUE(q.try_push(1, u));
  }
  auto refused = make_update(1, 99);
  ASSERT_FALSE(q.try_push(1, refused));

  std::vector<core::ParticipantId> resumed;
  q.set_space_callback([&](core::ParticipantId id) { resumed.push_back(id); });

  std::vector<IngestedUpdate> out;
  q.drain(2, out);  // depth 6 > capacity/2: still over the watermark
  EXPECT_TRUE(resumed.empty());
  q.drain(2, out);  // depth 4 == capacity/2: resumable now
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_EQ(resumed[0], 1u);
  EXPECT_FALSE(q.blocked(1));
}

TEST(SpillQueue, DeficitRoundRobinDoesNotStarveQuietPeers) {
  SpillQueue::Options opt;
  opt.drr_quantum = 8;
  SpillQueue q(opt);
  for (unsigned i = 0; i < 40; ++i) {
    auto u = make_update(1, i);  // noisy peer with a deep backlog
    ASSERT_TRUE(q.try_push(1, u));
  }
  for (unsigned i = 0; i < 8; ++i) {
    auto u = make_update(2, i);  // quiet peer
    ASSERT_TRUE(q.try_push(2, u));
  }
  std::vector<IngestedUpdate> out;
  EXPECT_EQ(q.drain(16, out), 16u);
  std::size_t from_quiet = 0;
  for (const auto& u : out) from_quiet += u.participant == 2;
  // One DRR round: 8 credits each — the quiet peer's whole backlog rides
  // the first batch despite the noisy peer's depth.
  EXPECT_EQ(from_quiet, 8u);
  // Everything eventually drains, in total.
  while (q.drain(16, out) > 0) {
  }
  EXPECT_EQ(out.size(), 48u);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.pushed(), 48u);
  EXPECT_EQ(q.drained(), 48u);
}

TEST(SpillQueue, BlockingPushWaitsForDrainAndHonorsGiveUp) {
  SpillQueue::Options opt;
  opt.capacity = 4;
  opt.per_peer_quota = 4;
  SpillQueue q(opt);
  for (unsigned i = 0; i < 4; ++i) {
    auto u = make_update(1, i);
    ASSERT_TRUE(q.try_push(1, u));
  }
  // give_up stops a push that would otherwise wait forever.
  EXPECT_FALSE(q.push_blocking(1, make_update(1, 90), [] { return true; }));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push_blocking(1, make_update(1, 91)));
    pushed = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(pushed);
  std::vector<IngestedUpdate> out;
  while (!pushed) {
    q.drain(4, out);
    std::this_thread::sleep_for(1ms);
  }
  producer.join();
  EXPECT_GE(out.size(), 4u);
}

// --- Loopback end-to-end ----------------------------------------------------

bgp::UpdateMessage announce_update(net::Asn asn, unsigned seq) {
  bgp::UpdateMessage u;
  bgp::RouteAttributes attrs;
  attrs.as_path = net::AsPath{asn};
  attrs.next_hop = net::Ipv4Address::parse("10.0.0.1");
  u.attrs = attrs;
  u.nlri = {net::Ipv4Prefix(
      net::Ipv4Address((100u << 24) | ((asn & 0xff) << 16) | (seq << 8)), 24)};
  return u;
}

/// Drains the pipeline until \p target updates have been applied (the
/// reactor thread decodes asynchronously) or the deadline passes.
void drain_until(IngestPipeline& pipeline, std::uint64_t target,
                 std::chrono::seconds budget = 10s) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (pipeline.applied() < target &&
         std::chrono::steady_clock::now() < deadline) {
    if (pipeline.drain() == 0) std::this_thread::sleep_for(1ms);
  }
}

class IngestLoopbackTest : public ::testing::Test {
 protected:
  IngestLoopbackTest() {
    p1_ = rt_.add_participant("a", 65001, 1);
    p2_ = rt_.add_participant("b", 65002, 1);
  }

  static BgpReplayClient::Options client_options(net::Asn asn) {
    BgpReplayClient::Options o;
    o.asn = asn;
    o.router_id = net::Ipv4Address(0x0a000000u | asn);
    return o;
  }

  core::SdxRuntime rt_;
  core::ParticipantId p1_ = 0;
  core::ParticipantId p2_ = 0;
};

TEST_F(IngestLoopbackTest, SessionsEstablishAndUpdatesInstall) {
  IngestPipeline::Options opt;
  opt.listener.hold_time = 0;  // deterministic: no keepalive ticking
  IngestPipeline pipeline(rt_, opt);
  const auto port = pipeline.start();
  ASSERT_GT(port, 0);

  BgpReplayClient c1(client_options(65001));
  BgpReplayClient c2(client_options(65002));
  c1.connect(port);
  c2.connect(port);
  EXPECT_TRUE(c1.established());
  EXPECT_TRUE(c2.established());

  constexpr unsigned kPerClient = 50;
  for (unsigned i = 0; i < kPerClient; ++i) {
    c1.send_update(announce_update(65001, i));
    c2.send_update(announce_update(65002, i));
  }
  drain_until(pipeline, 2 * kPerClient);
  EXPECT_EQ(pipeline.applied(), 2 * kPerClient);

  // Routes landed in the route server, attributed to the right peers.
  auto& server = rt_.route_server();
  const auto from_p1 = announce_update(65001, 7).nlri.front();
  const auto from_p2 = announce_update(65002, 3).nlri.front();
  auto best1 = server.best_route(p2_, from_p1);
  ASSERT_TRUE(best1.has_value());
  EXPECT_EQ(best1->learned_from, p1_);
  auto best2 = server.best_route(p1_, from_p2);
  ASSERT_TRUE(best2.has_value());
  EXPECT_EQ(best2->learned_from, p2_);

  EXPECT_EQ(pipeline.listener().sessions(), 2u);
  EXPECT_EQ(pipeline.listener().updates_received(), 2 * kPerClient);
  EXPECT_EQ(pipeline.queue().drops(), 0u);

  // Telemetry: every ingest series is exported, drops pinned at zero.
  pipeline.refresh_metrics();
  const auto metrics = rt_.dump_metrics();
  EXPECT_NE(metrics.find("sdx_ingest_sessions 2"), std::string::npos);
  EXPECT_NE(metrics.find("sdx_ingest_applied_total 100"), std::string::npos);
  EXPECT_NE(metrics.find("sdx_ingest_dropped_total 0"), std::string::npos);
  EXPECT_NE(metrics.find("sdx_ingest_install_latency_seconds_count"),
            std::string::npos);

  c1.close();
  c2.close();
  pipeline.stop();
}

TEST_F(IngestLoopbackTest, UnknownAsnIsRejectedWithCease) {
  IngestPipeline::Options opt;
  opt.listener.hold_time = 0;
  IngestPipeline pipeline(rt_, opt);
  const auto port = pipeline.start();

  auto o = client_options(64000);  // no participant speaks AS 64000
  o.max_attempts = 2;
  o.initial_backoff_seconds = 0.001;
  BgpReplayClient rejected(o);
  // RFC 4271 timing: the server validates the peer only once its side of
  // the handshake completes (the client's KEEPALIVE arrives), so the
  // client may observe a fully established session for an instant before
  // the Cease NOTIFICATION tears it down.
  try {
    rejected.connect(port);
  } catch (const std::runtime_error&) {
    // Also fine: the Cease raced ahead of the client's Established.
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (pipeline.listener().open_rejected() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(pipeline.listener().open_rejected(), 1u);
  while (rejected.poll_input() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_FALSE(rejected.established());
  EXPECT_EQ(pipeline.listener().sessions(), 0u);
  pipeline.refresh_metrics();
  EXPECT_NE(rt_.dump_metrics().find("sdx_ingest_open_rejected_total"),
            std::string::npos);
  pipeline.stop();
}

TEST_F(IngestLoopbackTest, BackpressureShedsReadsButDropsNothing) {
  IngestPipeline::Options opt;
  opt.listener.hold_time = 0;
  // A queue sized far below the offered load: backpressure must engage.
  opt.queue.capacity = 32;
  opt.queue.per_peer_quota = 16;
  opt.drain_batch = 16;
  IngestPipeline pipeline(rt_, opt);
  const auto port = pipeline.start();

  constexpr unsigned kUpdates = 1500;
  BgpReplayClient client(client_options(65001));
  client.connect(port);
  std::thread producer([&] {
    for (unsigned i = 0; i < kUpdates; ++i) {
      client.send_update(announce_update(65001, i % 200));
    }
  });

  drain_until(pipeline, kUpdates, 30s);
  producer.join();
  drain_until(pipeline, kUpdates, 30s);

  // Every update arrived exactly once; the only loss mechanism is TCP
  // backpressure, which loses nothing.
  EXPECT_EQ(pipeline.applied(), kUpdates);
  EXPECT_EQ(pipeline.listener().updates_received(), kUpdates);
  EXPECT_EQ(pipeline.queue().drops(), 0u);
  EXPECT_GT(pipeline.queue().shed_events(), 0u);
  pipeline.refresh_metrics();
  const auto metrics = rt_.dump_metrics();
  EXPECT_NE(metrics.find("sdx_ingest_dropped_total 0"), std::string::npos);
  pipeline.stop();
}

TEST_F(IngestLoopbackTest, ClientReconnectsAfterListenerRestart) {
  IngestPipeline::Options opt;
  opt.listener.hold_time = 0;
  IngestPipeline pipeline(rt_, opt);
  const auto port = pipeline.start();

  auto o = client_options(65001);
  o.initial_backoff_seconds = 0.005;
  BgpReplayClient client(o);
  client.connect(port);
  client.send_update(announce_update(65001, 0));
  drain_until(pipeline, 1);
  ASSERT_EQ(pipeline.applied(), 1u);
  EXPECT_EQ(client.reconnects(), 0u);

  // Bounce the listener: every session drops, the port is rebound.
  pipeline.stop();
  ASSERT_EQ(pipeline.start(port), port);

  // The client notices the close and transparently redials on next use.
  EXPECT_FALSE(client.poll_input());
  client.send_update(announce_update(65001, 1));
  EXPECT_EQ(client.reconnects(), 1u);
  EXPECT_TRUE(client.established());
  drain_until(pipeline, 2);
  EXPECT_EQ(pipeline.applied(), 2u);
  pipeline.stop();
}

TEST_F(IngestLoopbackTest, WithdrawalsFlowThroughTheSamePath) {
  IngestPipeline::Options opt;
  opt.listener.hold_time = 0;
  IngestPipeline pipeline(rt_, opt);
  const auto port = pipeline.start();
  BgpReplayClient client(client_options(65001));
  client.connect(port);

  const auto announced = announce_update(65001, 0);
  client.send_update(announced);
  drain_until(pipeline, 1);
  ASSERT_TRUE(
      rt_.route_server().best_route(p2_, announced.nlri.front()).has_value());

  bgp::UpdateMessage withdraw;
  withdraw.withdrawn = announced.nlri;
  client.send_update(withdraw);
  drain_until(pipeline, 2);
  EXPECT_FALSE(
      rt_.route_server().best_route(p2_, announced.nlri.front()).has_value());
  pipeline.stop();
}

// --- MRT replay as an ingest source -----------------------------------------

bgp::MrtRecord trace_record(std::uint32_t ts, net::Asn peer_as, unsigned seq,
                            const bgp::Message& message) {
  bgp::Bgp4mpMessage m;
  m.peer_as = peer_as;
  m.local_as = 64999;
  m.peer_ip = net::Ipv4Address(0x0a000000u | peer_as);
  m.local_ip = net::Ipv4Address::parse("10.0.0.254");
  m.message = message;
  static_cast<void>(seq);
  return bgp::encode_bgp4mp(ts, m);
}

TEST(MrtReplay, TraceStreamsIntoTheQueue) {
  std::stringstream ss;
  constexpr unsigned kUpdates = 25;
  for (unsigned i = 0; i < kUpdates; ++i) {
    bgp::write_record(ss, trace_record(i, 65001, i,
                                       announce_update(65001, i)));
  }
  // Non-UPDATE wrappers and unmapped peers are skipped, not errors.
  bgp::write_record(ss, trace_record(99, 65001, 0, bgp::KeepaliveMessage{}));
  bgp::write_record(ss, trace_record(99, 64000, 0, announce_update(64000, 0)));

  SpillQueue queue;
  MrtReplaySource source(
      {}, [](net::Asn as, net::Ipv4Address) -> std::optional<core::ParticipantId> {
        if (as == 65001) return 1;
        return std::nullopt;
      });
  const auto result = source.replay_trace(ss, queue);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.updates, kUpdates);
  EXPECT_EQ(result.skipped, 2u);
  EXPECT_EQ(result.records, kUpdates + 2);
  EXPECT_EQ(queue.depth(), kUpdates);

  std::vector<IngestedUpdate> out;
  while (queue.drain(64, out) > 0) {
  }
  ASSERT_EQ(out.size(), kUpdates);
  for (const auto& u : out) EXPECT_EQ(u.participant, 1u);
}

TEST(MrtReplay, TornTrailingRecordIsReportedNotThrown) {
  std::stringstream ss;
  for (unsigned i = 0; i < 5; ++i) {
    bgp::write_record(ss, trace_record(i, 65001, i,
                                       announce_update(65001, i)));
  }
  std::string data = ss.str();
  data.resize(data.size() - 7);  // tear the last record mid-body
  std::istringstream torn(data);

  SpillQueue queue;
  MrtReplaySource source(
      {}, [](net::Asn, net::Ipv4Address) { return std::optional<core::ParticipantId>(1); });
  const auto result = source.replay_trace(torn, queue);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.tail, bgp::MrtReadStatus::kTruncated);
  EXPECT_FALSE(result.error.empty());
  // Everything before the tear was still delivered.
  EXPECT_EQ(result.updates, 4u);
  EXPECT_EQ(queue.depth(), 4u);
}

TEST(MrtReplay, GiveUpStopsABlockedReplay) {
  std::stringstream ss;
  for (unsigned i = 0; i < 10; ++i) {
    bgp::write_record(ss, trace_record(i, 65001, i,
                                       announce_update(65001, i)));
  }
  SpillQueue::Options opt;
  opt.capacity = 4;
  SpillQueue queue(opt);
  MrtReplaySource source(
      {}, [](net::Asn, net::Ipv4Address) { return std::optional<core::ParticipantId>(1); });
  // Nothing drains, so the replay fills the queue and would block forever
  // on the fifth push; the give_up predicate stops it at the bound.
  const auto result =
      source.replay_trace(ss, queue, [&] { return queue.depth() >= 4; });
  EXPECT_TRUE(result.gave_up);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.updates, 4u);
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_EQ(queue.drops(), 0u);
}

TEST(MrtReplay, RibSnapshotReplaysAsAnnouncements) {
  bgp::RouteServer server;
  server.add_peer({1, 65001, net::Ipv4Address::parse("10.0.0.1")});
  server.add_peer({2, 65002, net::Ipv4Address::parse("10.0.0.2")});
  auto route = [](const char* prefix, std::initializer_list<net::Asn> path,
                  core::ParticipantId from, const char* id) {
    bgp::Route r;
    r.prefix = net::Ipv4Prefix::parse(prefix);
    r.attrs.as_path = net::AsPath(path);
    r.attrs.next_hop = net::Ipv4Address::parse(id);
    r.learned_from = from;
    r.peer_router_id = net::Ipv4Address::parse(id);
    return r;
  };
  server.announce(route("100.1.0.0/16", {65001, 7}, 1, "10.0.0.1"));
  server.announce(route("100.2.0.0/16", {65002}, 2, "10.0.0.2"));
  server.announce(route("100.3.0.0/16", {65001}, 1, "10.0.0.1"));

  std::stringstream ss;
  bgp::write_rib_dump(ss, server, 1388534400);

  SpillQueue queue;
  MrtReplaySource source(
      {}, [](net::Asn as, net::Ipv4Address) -> std::optional<core::ParticipantId> {
        if (as == 65001) return 11;
        if (as == 65002) return 22;
        return std::nullopt;
      });
  const auto result = source.replay_rib(ss, queue);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.updates, 3u);

  std::vector<IngestedUpdate> out;
  while (queue.drain(64, out) > 0) {
  }
  ASSERT_EQ(out.size(), 3u);
  std::size_t from_one = 0, from_two = 0;
  for (const auto& u : out) {
    from_one += u.participant == 11;
    from_two += u.participant == 22;
    ASSERT_TRUE(u.update.attrs.has_value());
    ASSERT_EQ(u.update.nlri.size(), 1u);
  }
  EXPECT_EQ(from_one, 2u);
  EXPECT_EQ(from_two, 1u);
}

}  // namespace
}  // namespace sdx::ingest
