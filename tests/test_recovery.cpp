// Crash-recovery tests for the journaled runtime: warm restart (persisted
// tables adopted with zero recompiles, VNH/VMAC bindings preserved), cold
// replay from a genesis WAL, checkpoint+tail recovery, the torn-tail
// truncation sweep against an ixp::UpdateTrace (at compile widths 1 and 8),
// forced-cold fallback, session_down record collapsing, error paths, and
// the scenario-language save/recover/journal round trip.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ixp/update_trace.hpp"
#include "persist/journal.hpp"
#include "persist/wal.hpp"
#include "sdx/runtime.hpp"
#include "sdx/scenario.hpp"

namespace fs = std::filesystem;

namespace sdx::core {
namespace {

using net::Ipv4Prefix;
using net::PacketBuilder;

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/sdx_recovery_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

class RecoveryFixture : public ::testing::Test {
 protected:
  /// The reproducible base exchange: A steers port-80 traffic to B and
  /// port-443 traffic to C; B and C announce. Deterministic participant
  /// state (ids, MACs, router IPs) is what lets a checkpoint re-register
  /// byte-identical participants on recovery.
  static void build(SdxRuntime& r) {
    auto pa = r.add_participant("A", 65001);
    auto pb = r.add_participant("B", 65002);
    auto pc = r.add_participant("C", 65003);
    r.set_outbound(pa, {OutboundClause{ClauseMatch{}.dst_port(80), pb},
                        OutboundClause{ClauseMatch{}.dst_port(443), pc}});
    r.announce(pb, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65002, 7});
    r.announce(pb, Ipv4Prefix::parse("100.2.0.0/16"), net::AsPath{65002, 7});
    r.announce(pc, Ipv4Prefix::parse("100.9.0.0/16"), net::AsPath{65003});
    r.install();
  }

  static std::uint64_t counter(SdxRuntime& r, const char* name) {
    return r.telemetry().metrics.counter(name).value();
  }

  static net::PortId egress(SdxRuntime& r, ParticipantId from,
                            const char* dst_ip, std::uint16_t dst_port) {
    auto out = r.send(
        from, PacketBuilder().dst_ip(dst_ip).dst_port(dst_port).build());
    return out.size() == 1 ? out[0].port : net::PortId{0};
  }

  /// Forwarding probes covering both policy clauses and default routing.
  static std::vector<net::PortId> probes(SdxRuntime& r) {
    return {egress(r, 1, "100.1.2.3", 80), egress(r, 1, "100.1.2.3", 443),
            egress(r, 1, "100.2.4.5", 80), egress(r, 1, "100.9.6.7", 53),
            egress(r, 1, "100.1.2.3", 53)};
  }

  ParticipantId a = 1, b = 2, c = 3;
};

}  // namespace

// --- warm restart -----------------------------------------------------------

TEST_F(RecoveryFixture, WarmRestartAdoptsTablesWithoutCompiling) {
  TempDir dir;
  SdxRuntime rt;
  build(rt);
  // Attaching to an already-built runtime writes the anchoring checkpoint
  // itself — no explicit checkpoint() needed for recoverability.
  rt.attach_journal(dir.path);
  ASSERT_TRUE(rt.journaling());
  const std::string fp = rt.compiled().fingerprint();
  const auto expected = probes(rt);

  SdxRuntime rt2;
  const auto report = rt2.recover(dir.path);
  EXPECT_TRUE(report.warm);
  EXPECT_TRUE(report.had_checkpoint);
  EXPECT_EQ(report.replayed, 0u);
  EXPECT_EQ(report.torn_bytes, 0u);
  // The acceptance gate: a warm restart installs zero recompiled rules.
  EXPECT_EQ(counter(rt2, "sdx_compile_runs_total"), 0u);
  EXPECT_EQ(counter(rt2, "sdx_recovery_warm_total"), 1u);
  EXPECT_EQ(counter(rt2, "sdx_recovery_cold_total"), 0u);
  EXPECT_TRUE(rt2.installed());
  EXPECT_EQ(rt2.compiled().fingerprint(), fp);
  EXPECT_EQ(probes(rt2), expected);
  // Every advertised VNH→VMAC binding survives, so border-router ARP
  // caches stay valid across the restart.
  for (const char* p : {"100.1.0.0/16", "100.2.0.0/16", "100.9.0.0/16"}) {
    const auto prefix = Ipv4Prefix::parse(p);
    EXPECT_EQ(rt2.current_binding(prefix), rt.current_binding(prefix)) << p;
  }
  // Recovery resumes recording: new mutations land in the journal.
  EXPECT_TRUE(rt2.journaling());
  const auto before = counter(rt2, "sdx_journal_records_total");
  rt2.announce(c, Ipv4Prefix::parse("100.3.0.0/16"), net::AsPath{65003});
  EXPECT_EQ(counter(rt2, "sdx_journal_records_total"), before + 1);
}

TEST_F(RecoveryFixture, WarmRestartPreservesFastPathBindings) {
  TempDir dir;
  SdxRuntime rt;
  build(rt);
  rt.attach_journal(dir.path);
  // Post-install fast-path updates allocate fresh VNH bindings; the
  // checkpoint must carry them so the warm restart reuses them.
  const auto p4 = Ipv4Prefix::parse("100.4.0.0/16");
  rt.announce(c, p4, net::AsPath{65003});
  rt.checkpoint();
  const auto binding = rt.current_binding(p4);
  ASSERT_TRUE(binding.has_value());

  SdxRuntime rt2;
  const auto report = rt2.recover(dir.path);
  EXPECT_TRUE(report.warm);
  EXPECT_EQ(report.replayed, 0u);  // the announce is inside the checkpoint
  EXPECT_EQ(counter(rt2, "sdx_compile_runs_total"), 0u);
  EXPECT_EQ(rt2.current_binding(p4), binding);
  EXPECT_EQ(egress(rt2, a, "100.4.1.1", 443), egress(rt, a, "100.4.1.1", 443));
  EXPECT_EQ(egress(rt2, a, "100.4.1.1", 53), egress(rt, a, "100.4.1.1", 53));
}

// --- cold replay ------------------------------------------------------------

TEST_F(RecoveryFixture, ColdReplayFromGenesisWalRebuildsEverything) {
  TempDir dir;
  std::string fp;
  std::vector<net::PortId> expected;
  {
    SdxRuntime rt;
    rt.attach_journal(dir.path);  // fresh runtime: genesis WAL, no checkpoint
    build(rt);
    fp = rt.compiled().fingerprint();
    expected = probes(rt);
  }
  SdxRuntime rt2;
  const auto report = rt2.recover(dir.path);
  EXPECT_FALSE(report.warm);
  EXPECT_FALSE(report.had_checkpoint);
  // 3 participants + 1 policy + 3 announces + 1 install.
  EXPECT_EQ(report.replayed, 8u);
  EXPECT_EQ(counter(rt2, "sdx_recovery_cold_total"), 1u);
  EXPECT_EQ(counter(rt2, "sdx_recovery_replayed_records_total"), 8u);
  EXPECT_EQ(rt2.compiled().fingerprint(), fp);
  EXPECT_EQ(probes(rt2), expected);
}

TEST_F(RecoveryFixture, CheckpointPlusTailReplaysThroughBatchedFastPath) {
  TempDir dir;
  const auto p1 = Ipv4Prefix::parse("100.1.0.0/16");
  std::vector<net::PortId> expected;
  {
    SdxRuntime rt;
    build(rt);
    rt.attach_journal(dir.path);
    // Tail records past the checkpoint: C takes over 100.1/16, B withdraws
    // 100.2/16.
    rt.announce(c, p1, net::AsPath{65003});
    rt.withdraw(b, Ipv4Prefix::parse("100.2.0.0/16"));
    expected = probes(rt);
  }
  SdxRuntime rt2;
  const auto report = rt2.recover(dir.path);
  EXPECT_TRUE(report.had_checkpoint);
  EXPECT_TRUE(report.warm);  // the checkpointed tables themselves adopt warm
  EXPECT_EQ(report.replayed, 2u);
  EXPECT_EQ(probes(rt2), expected);

  // Canonicalize both sides with a full recompile: the replayed timeline
  // must be state-equivalent to a runtime that lived through the updates.
  SdxRuntime golden;
  build(golden);
  golden.announce(c, p1, net::AsPath{65003});
  golden.withdraw(b, Ipv4Prefix::parse("100.2.0.0/16"));
  golden.background_recompile();
  rt2.background_recompile();
  EXPECT_EQ(rt2.compiled().fingerprint(), golden.compiled().fingerprint());
}

// --- forced cold fallback ---------------------------------------------------

TEST_F(RecoveryFixture, FingerprintMismatchFallsBackToColdInstall) {
  TempDir dir;
  std::string fp;
  std::vector<net::PortId> expected;
  {
    SdxRuntime rt;
    build(rt);
    rt.attach_journal(dir.path);
    fp = rt.compiled().fingerprint();
    expected = probes(rt);
  }
  // Tamper with the stored fingerprint (models code drift or a corrupted
  // artifact that still decodes): recovery must not trust the tables.
  std::string ckpt_path;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    if (entry.path().extension() == ".ckpt") ckpt_path = entry.path();
  }
  ASSERT_FALSE(ckpt_path.empty());
  auto st = persist::try_load_checkpoint(ckpt_path);
  ASSERT_TRUE(st.has_value());
  st->fingerprint = "not-the-real-fingerprint";
  persist::write_checkpoint_file(ckpt_path, *st);

  SdxRuntime rt2;
  const auto report = rt2.recover(dir.path);
  EXPECT_FALSE(report.warm);
  EXPECT_EQ(counter(rt2, "sdx_recovery_cold_total"), 1u);
  EXPECT_GE(counter(rt2, "sdx_compile_runs_total"), 1u);
  // The cold install recompiles from the restored inputs — same state,
  // same tables, just paid for.
  EXPECT_EQ(rt2.compiled().fingerprint(), fp);
  EXPECT_EQ(probes(rt2), expected);
}

// --- session_down -----------------------------------------------------------

TEST_F(RecoveryFixture, SessionDownIsOneRecordAndReplays) {
  TempDir dir;
  std::vector<net::PortId> expected;
  {
    SdxRuntime rt;
    build(rt);
    rt.attach_journal(dir.path);
    const auto before = counter(rt, "sdx_journal_records_total");
    // The compound teardown (two withdrawals + policy removal) must log as
    // a single kSessionDown record, not its derived inner mutations.
    EXPECT_EQ(rt.session_down(b), 2u);
    EXPECT_EQ(counter(rt, "sdx_journal_records_total"), before + 1);
    expected = probes(rt);
  }
  SdxRuntime rt2;
  const auto report = rt2.recover(dir.path);
  EXPECT_EQ(report.replayed, 1u);
  EXPECT_EQ(probes(rt2), expected);

  SdxRuntime golden;
  build(golden);
  golden.session_down(b);
  golden.background_recompile();
  rt2.background_recompile();
  EXPECT_EQ(rt2.compiled().fingerprint(), golden.compiled().fingerprint());
}

// --- truncation sweep -------------------------------------------------------

namespace {

/// Byte offsets of every record boundary in a WAL segment file:
/// boundaries[k] is where record k starts; boundaries.back() is the clean
/// end of file.
std::vector<std::uint64_t> record_boundaries(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes{std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>()};
  std::vector<std::uint64_t> out;
  std::uint64_t pos = persist::kWalHeaderBytes;
  while (pos < bytes.size()) {
    out.push_back(pos);
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= std::uint32_t(std::uint8_t(bytes[pos + i])) << (8 * i);
    }
    pos += persist::kWalFrameBytes + len;
  }
  out.push_back(pos);
  return out;
}

}  // namespace

TEST_F(RecoveryFixture, TruncationSweepMatchesPrefixReplay) {
  // A synthetic RIS-like tail: announce/withdraw events from the paper's
  // burst model, applied by C over a small prefix universe.
  ixp::TraceConfig cfg;
  cfg.seed = 7;
  cfg.duration_s = 4 * 3600.0;
  cfg.prefix_count = 24;
  cfg.frac_prefixes_updated = 0.5;
  auto events = ixp::generate_trace_vector(cfg);
  ASSERT_GE(events.size(), 4u);
  if (events.size() > 10) events.resize(10);
  const auto event_prefix = [](const ixp::TraceEvent& ev) {
    return Ipv4Prefix::parse("100." + std::to_string(10 + ev.prefix_index) +
                             ".0.0/16");
  };
  const auto apply = [&](SdxRuntime& r, const ixp::TraceEvent& ev) {
    if (ev.withdrawal) {
      r.withdraw(3, event_prefix(ev));
    } else {
      r.announce(3, event_prefix(ev),
                 net::AsPath{65003, net::Asn(100 + ev.prefix_index)});
    }
  };

  // Journal the reference timeline: checkpoint at install, every event a
  // tail record.
  TempDir dir;
  {
    SdxRuntime rt;
    build(rt);
    rt.attach_journal(dir.path);
    for (const auto& ev : events) apply(rt, ev);
  }
  std::string seg_path;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    if (entry.path().extension() == ".log") seg_path = entry.path();
  }
  ASSERT_FALSE(seg_path.empty());
  const auto bounds = record_boundaries(seg_path);
  const std::size_t n = bounds.size() - 1;
  ASSERT_EQ(n, events.size());

  // Reference fingerprints: a runtime that lived through the first k
  // events, canonicalized by a full recompile.
  std::vector<std::string> ref_fp(n + 1);
  for (std::size_t k = 0; k <= n; ++k) {
    SdxRuntime ref;
    build(ref);
    for (std::size_t i = 0; i < k; ++i) apply(ref, events[i]);
    ref.background_recompile();
    ref_fp[k] = ref.compiled().fingerprint();
  }

  const auto recover_fp = [&](const std::string& journal_dir,
                              unsigned threads, std::size_t want_replayed,
                              std::uint64_t want_torn) {
    SdxRuntime rt(bgp::DecisionConfig{}, CompileOptions{.threads = threads});
    const auto report = rt.recover(journal_dir);
    EXPECT_TRUE(report.warm);
    EXPECT_EQ(report.replayed, want_replayed);
    EXPECT_EQ(report.torn_bytes, want_torn);
    rt.background_recompile();
    return rt.compiled().fingerprint();
  };

  for (const unsigned threads : {1u, 8u}) {
    // Whole-record truncation: cutting at the k-th boundary must recover
    // exactly the first k events.
    for (std::size_t k = 0; k <= n; ++k) {
      TempDir cut_dir;
      fs::copy(dir.path, cut_dir.path,
               fs::copy_options::overwrite_existing |
                   fs::copy_options::recursive);
      const std::string seg =
          cut_dir.path + "/" + fs::path(seg_path).filename().string();
      fs::resize_file(seg, bounds[k]);
      EXPECT_EQ(recover_fp(cut_dir.path, threads, k, 0), ref_fp[k])
          << "threads=" << threads << " boundary k=" << k;
    }
    // Byte-wise truncation inside the last record: every cut must be
    // detected as a torn tail and recover the surviving prefix of events.
    for (std::uint64_t cut = bounds[n - 1] + 1; cut < bounds[n]; ++cut) {
      TempDir cut_dir;
      fs::copy(dir.path, cut_dir.path,
               fs::copy_options::overwrite_existing |
                   fs::copy_options::recursive);
      const std::string seg =
          cut_dir.path + "/" + fs::path(seg_path).filename().string();
      fs::resize_file(seg, cut);
      EXPECT_EQ(recover_fp(cut_dir.path, threads, n - 1,
                           cut - bounds[n - 1]),
                ref_fp[n - 1])
          << "threads=" << threads << " cut=" << cut;
    }
  }
}

// --- error paths ------------------------------------------------------------

TEST_F(RecoveryFixture, RecoverRequiresAFreshRuntime) {
  TempDir dir;
  {
    SdxRuntime rt;
    build(rt);
    rt.attach_journal(dir.path);
  }
  SdxRuntime rt2;
  build(rt2);
  EXPECT_THROW(rt2.recover(dir.path), std::logic_error);
}

TEST_F(RecoveryFixture, RecoverFromEmptyDirectoryThrows) {
  TempDir dir;
  SdxRuntime rt;
  EXPECT_THROW(rt.recover(dir.path), std::runtime_error);
}

TEST_F(RecoveryFixture, DoubleAttachThrows) {
  TempDir dir1, dir2;
  SdxRuntime rt;
  build(rt);
  rt.attach_journal(dir1.path);
  EXPECT_THROW(rt.attach_journal(dir2.path), std::logic_error);
}

TEST_F(RecoveryFixture, AttachToPopulatedDirectoryThrows) {
  TempDir dir;
  {
    SdxRuntime rt;
    build(rt);
    rt.attach_journal(dir.path);
  }
  SdxRuntime rt2;
  build(rt2);
  EXPECT_THROW(rt2.attach_journal(dir.path), std::logic_error);
}

// --- scenario language ------------------------------------------------------

TEST_F(RecoveryFixture, ScenarioSaveRecoverJournalRoundTrip) {
  TempDir dir;
  {
    ScenarioInterpreter interp;
    std::istringstream script(
        "participant A 65001\n"
        "participant B 65002\n"
        "participant C 65003\n"
        "outbound A match dstport=80 -> B\n"
        "announce B 100.1.0.0/16 path 65002 900 10\n"
        "announce C 100.9.0.0/16 path 65003\n"
        "install\n"
        "save " + dir.path + "\n"
        // A tail record past the checkpoint: C takes over 100.1/16 with a
        // shorter path, flipping default (non-policy) traffic to C.
        "announce C 100.1.0.0/16 path 65003\n"
        "send A srcip=1.2.3.4 dstip=100.1.2.3 ipproto=17 dstport=53\n"
        "expect port C 0\n");
    std::ostringstream out;
    EXPECT_EQ(interp.run(script, out), 0u) << out.str();
    EXPECT_NE(out.str().find("checkpoint written at lsn"), std::string::npos);
  }
  ScenarioInterpreter interp;
  std::istringstream script(
      "recover " + dir.path + "\n"
      "journal\n"
      // The tail announce must have replayed: default traffic goes to C,
      // policy traffic still to B.
      "send A srcip=1.2.3.4 dstip=100.1.2.3 ipproto=17 dstport=53\n"
      "expect port C 0\n"
      "send A srcip=1.2.3.4 dstip=100.1.2.3 ipproto=6 dstport=80\n"
      "expect port B 0\n");
  std::ostringstream out;
  EXPECT_EQ(interp.run(script, out), 0u) << out.str();
  EXPECT_NE(out.str().find("restart from " + dir.path), std::string::npos);
  EXPECT_NE(out.str().find("journal " + dir.path), std::string::npos);
}

}  // namespace sdx::core
