/// Tests for the MRT (RFC 6396) codec: record framing, BGP4MP update
/// records, TABLE_DUMP_V2 RIB snapshots (round-tripped through a live
/// route server), and corrupt-input rejection.

#include <gtest/gtest.h>

#include <sstream>

#include "bgp/mrt.hpp"
#include "netbase/rng.hpp"

namespace sdx::bgp {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;

TEST(MrtRecordTest, FramingRoundTrip) {
  MrtRecord record;
  record.timestamp = 1388534400;  // 2014-01-01
  record.type = kMrtTypeBgp4mp;
  record.subtype = kMrtSubtypeBgp4mpMessageAs4;
  record.body = {1, 2, 3, 4, 5};

  std::stringstream ss;
  write_record(ss, record);
  auto back = read_record(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, record);
  EXPECT_FALSE(read_record(ss).has_value());  // clean EOF
}

TEST(MrtRecordTest, TruncatedHeaderThrows) {
  std::stringstream ss;
  ss.write("\x00\x01\x02", 3);
  EXPECT_THROW(read_record(ss), std::runtime_error);
}

TEST(MrtRecordTest, TruncatedBodyThrows) {
  MrtRecord record;
  record.body = {1, 2, 3, 4, 5, 6, 7, 8};
  std::stringstream ss;
  write_record(ss, record);
  std::string data = ss.str();
  data.resize(data.size() - 3);
  std::stringstream truncated(data);
  EXPECT_THROW(read_record(truncated), std::runtime_error);
}

TEST(MrtRecordTest, OversizedLengthRejected) {
  std::stringstream ss;
  const std::uint8_t header[12] = {0, 0, 0, 0, 0,    16,  0,   4,
                                   0xFF, 0xFF, 0xFF, 0xFF};
  ss.write(reinterpret_cast<const char*>(header), sizeof(header));
  EXPECT_THROW(read_record(ss), std::runtime_error);
}

TEST(MrtBgp4mpTest, UpdateRoundTrip) {
  UpdateMessage u;
  RouteAttributes attrs;
  attrs.as_path = net::AsPath{65001, 43515};
  attrs.next_hop = Ipv4Address::parse("10.0.0.1");
  attrs.med = 20;
  u.attrs = attrs;
  u.nlri = {Ipv4Prefix::parse("100.1.0.0/16")};
  u.withdrawn = {Ipv4Prefix::parse("100.2.0.0/16")};

  Bgp4mpMessage msg;
  msg.peer_as = 65001;
  msg.local_as = 64999;
  msg.peer_ip = Ipv4Address::parse("10.0.0.1");
  msg.local_ip = Ipv4Address::parse("10.0.0.254");
  msg.message = u;

  auto record = encode_bgp4mp(1388534400, msg);
  EXPECT_EQ(record.timestamp, 1388534400u);
  auto back = decode_bgp4mp(record);
  EXPECT_EQ(back, msg);
}

TEST(MrtBgp4mpTest, RejectsWrongSubtype) {
  MrtRecord record;
  record.type = kMrtTypeTableDumpV2;
  record.subtype = kMrtSubtypeRibIpv4Unicast;
  EXPECT_THROW(decode_bgp4mp(record), std::runtime_error);
}

TEST(MrtBgp4mpTest, RejectsCorruptEmbeddedMessage) {
  Bgp4mpMessage msg;
  msg.peer_as = 65001;
  msg.local_as = 64999;
  msg.message = KeepaliveMessage{};
  auto record = encode_bgp4mp(0, msg);
  record.body[record.body.size() - 19] = 0x00;  // wreck the BGP marker
  EXPECT_THROW(decode_bgp4mp(record), std::runtime_error);
}

TEST(MrtBgp4mpTest, StreamOfManyUpdatesRoundTrips) {
  net::SplitMix64 rng(33);
  std::stringstream ss;
  std::vector<Bgp4mpMessage> sent;
  for (int i = 0; i < 100; ++i) {
    UpdateMessage u;
    if (rng.chance(0.8)) {
      RouteAttributes attrs;
      attrs.as_path =
          net::AsPath{static_cast<Asn>(65000 + rng.below(100)),
                      static_cast<Asn>(rng.range(1, 400000))};
      attrs.next_hop = Ipv4Address(static_cast<std::uint32_t>(rng()));
      u.attrs = attrs;
      u.nlri = {Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(rng())),
                           static_cast<int>(rng.range(8, 28)))};
    } else {
      u.withdrawn = {Ipv4Prefix(
          Ipv4Address(static_cast<std::uint32_t>(rng())), 24)};
    }
    Bgp4mpMessage msg;
    msg.peer_as = static_cast<Asn>(65000 + rng.below(100));
    msg.local_as = 64999;
    msg.peer_ip = Ipv4Address(static_cast<std::uint32_t>(rng()));
    msg.message = u;
    write_record(ss, encode_bgp4mp(static_cast<std::uint32_t>(i), msg));
    sent.push_back(std::move(msg));
  }
  std::size_t read = 0;
  while (auto record = read_record(ss)) {
    ASSERT_LT(read, sent.size());
    EXPECT_EQ(decode_bgp4mp(*record), sent[read]);
    ++read;
  }
  EXPECT_EQ(read, sent.size());
}

TEST(MrtRibDumpTest, RouteServerSnapshotRoundTrips) {
  RouteServer server;
  server.add_peer({1, 65001, Ipv4Address::parse("10.0.0.1")});
  server.add_peer({2, 65002, Ipv4Address::parse("10.0.0.2")});
  server.add_peer({3, 65003, Ipv4Address::parse("10.0.0.3")});

  auto route = [](const char* prefix, std::initializer_list<Asn> path,
                  ParticipantId from, const char* id) {
    Route r;
    r.prefix = Ipv4Prefix::parse(prefix);
    r.attrs.as_path = net::AsPath(path);
    r.attrs.next_hop = Ipv4Address::parse(id);
    r.learned_from = from;
    r.peer_router_id = Ipv4Address::parse(id);
    return r;
  };
  server.announce(route("100.1.0.0/16", {65001, 7}, 1, "10.0.0.1"));
  server.announce(route("100.1.0.0/16", {65002, 8, 7}, 2, "10.0.0.2"));
  server.announce(route("100.2.0.0/16", {65003}, 3, "10.0.0.3"));

  std::stringstream ss;
  const std::size_t records = write_rib_dump(ss, server, 1388534400);
  EXPECT_EQ(records, 3u);  // index table + 2 prefixes

  auto dump = read_rib_dump(ss);
  ASSERT_EQ(dump.peers.size(), 3u);
  EXPECT_EQ(dump.peers[0].asn, 65001u);
  ASSERT_EQ(dump.routes.size(), 3u);

  // Reload into a fresh server: per-participant bests must agree.
  RouteServer reloaded;
  for (const auto& p : dump.peers) reloaded.add_peer(p);
  for (const auto& r : dump.routes) reloaded.announce(r);
  for (auto prefix :
       {Ipv4Prefix::parse("100.1.0.0/16"), Ipv4Prefix::parse("100.2.0.0/16")}) {
    for (ParticipantId id : {1u, 2u, 3u}) {
      auto original = server.best_route(id, prefix);
      auto restored = reloaded.best_route(id, prefix);
      ASSERT_EQ(original.has_value(), restored.has_value());
      if (original) {
        EXPECT_EQ(original->attrs, restored->attrs);
        EXPECT_EQ(original->learned_from, restored->learned_from);
      }
    }
  }
}

TEST(MrtStatusTest, CleanEofVsTruncationAreDistinguished) {
  MrtRecord record;
  record.type = kMrtTypeBgp4mp;
  record.subtype = kMrtSubtypeBgp4mpMessageAs4;
  record.body = {1, 2, 3, 4, 5};
  std::stringstream ss;
  write_record(ss, record);

  MrtRecord out;
  std::string error;
  EXPECT_EQ(read_record(ss, out, &error), MrtReadStatus::kOk);
  EXPECT_EQ(out, record);
  EXPECT_EQ(read_record(ss, out, &error), MrtReadStatus::kEof);

  // The same stream with its tail chopped is kTruncated, not kEof.
  std::stringstream full;
  write_record(full, record);
  std::string data = full.str();
  data.resize(data.size() - 2);
  std::stringstream torn(data);
  EXPECT_EQ(read_record(torn, out, &error), MrtReadStatus::kTruncated);
  EXPECT_FALSE(error.empty());

  // Torn inside the 12-byte header is truncation too.
  std::stringstream header_torn(data.substr(0, 5));
  EXPECT_EQ(read_record(header_torn, out, &error), MrtReadStatus::kTruncated);
}

TEST(MrtStatusTest, OversizedBodyIsItsOwnStatus) {
  std::stringstream ss;
  const std::uint8_t header[12] = {0,    0,    0,    0,    0,    16,
                                   0,    4,    0xFF, 0xFF, 0xFF, 0xFF};
  ss.write(reinterpret_cast<const char*>(header), sizeof(header));
  MrtRecord out;
  std::string error;
  EXPECT_EQ(read_record(ss, out, &error), MrtReadStatus::kOversized);
  EXPECT_FALSE(error.empty());
}

TEST(MrtStatusTest, StatusNamesAreStable) {
  EXPECT_EQ(to_string(MrtReadStatus::kOk), "ok");
  EXPECT_EQ(to_string(MrtReadStatus::kEof), "eof");
  EXPECT_EQ(to_string(MrtReadStatus::kTruncated), "truncated");
  EXPECT_EQ(to_string(MrtReadStatus::kOversized), "oversized");
  EXPECT_EQ(to_string(MrtReadStatus::kCorrupt), "corrupt");
}

TEST(MrtStreamingRibTest, StreamingReaderMatchesMaterializingReader) {
  RouteServer server;
  server.add_peer({1, 65001, Ipv4Address::parse("10.0.0.1")});
  server.add_peer({2, 65002, Ipv4Address::parse("10.0.0.2")});
  for (int i = 0; i < 10; ++i) {
    Route r;
    r.prefix = Ipv4Prefix(Ipv4Address(0x64000000u + (i << 16)), 16);
    r.attrs.as_path = net::AsPath{static_cast<Asn>(65001 + (i % 2)),
                                  static_cast<Asn>(100 + i)};
    r.attrs.next_hop = Ipv4Address::parse(i % 2 ? "10.0.0.2" : "10.0.0.1");
    r.learned_from = 1 + (i % 2);
    r.peer_router_id = r.attrs.next_hop;
    server.announce(r);
  }
  std::stringstream ss;
  write_rib_dump(ss, server, 1388534400);
  const std::string data = ss.str();

  std::stringstream for_materializing(data);
  const auto dump = read_rib_dump(for_materializing);

  std::stringstream for_streaming(data);
  std::vector<RouteServer::Peer> peers;
  std::vector<Route> routes;
  const auto result = read_rib_dump_stream(
      for_streaming, [&](const RouteServer::Peer& p) { peers.push_back(p); },
      [&](Route r) { routes.push_back(std::move(r)); });

  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.routes, routes.size());
  ASSERT_EQ(peers.size(), dump.peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    EXPECT_EQ(peers[i].id, dump.peers[i].id);
    EXPECT_EQ(peers[i].asn, dump.peers[i].asn);
    EXPECT_EQ(peers[i].router_id, dump.peers[i].router_id);
  }
  ASSERT_EQ(routes.size(), dump.routes.size());
  for (std::size_t i = 0; i < routes.size(); ++i) {
    EXPECT_EQ(routes[i], dump.routes[i]);
  }
}

TEST(MrtStreamingRibTest, TornTailReportsTruncatedAfterDelivering) {
  RouteServer server;
  server.add_peer({1, 65001, Ipv4Address::parse("10.0.0.1")});
  for (int i = 0; i < 4; ++i) {
    Route r;
    r.prefix = Ipv4Prefix(Ipv4Address(0x64000000u + (i << 16)), 16);
    r.attrs.as_path = net::AsPath{65001};
    r.attrs.next_hop = Ipv4Address::parse("10.0.0.1");
    r.learned_from = 1;
    r.peer_router_id = r.attrs.next_hop;
    server.announce(r);
  }
  std::stringstream ss;
  write_rib_dump(ss, server);
  std::string data = ss.str();
  data.resize(data.size() - 5);  // tear the last RIB record

  std::stringstream torn(data);
  std::vector<Route> routes;
  const auto result = read_rib_dump_stream(
      torn, {}, [&](Route r) { routes.push_back(std::move(r)); });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.tail, MrtReadStatus::kTruncated);
  EXPECT_FALSE(result.error.empty());
  // Everything before the tear was delivered.
  EXPECT_EQ(routes.size(), 3u);
  EXPECT_EQ(result.routes, 3u);
}

TEST(MrtStreamingRibTest, MissingIndexTableIsCorruptNotThrown) {
  MrtRecord rib;
  rib.type = kMrtTypeTableDumpV2;
  rib.subtype = kMrtSubtypeRibIpv4Unicast;
  std::stringstream ss;
  write_record(ss, rib);
  const auto result = read_rib_dump_stream(ss, {}, {});
  EXPECT_EQ(result.tail, MrtReadStatus::kCorrupt);
  EXPECT_FALSE(result.error.empty());
}

TEST(MrtRibDumpTest, RejectsMissingIndexTable) {
  MrtRecord rib;
  rib.type = kMrtTypeTableDumpV2;
  rib.subtype = kMrtSubtypeRibIpv4Unicast;
  std::stringstream ss;
  write_record(ss, rib);
  EXPECT_THROW(read_rib_dump(ss), std::runtime_error);
}

TEST(MrtRibDumpTest, RejectsDanglingPeerIndex) {
  RouteServer server;
  server.add_peer({1, 65001, Ipv4Address::parse("10.0.0.1")});
  Route r;
  r.prefix = Ipv4Prefix::parse("100.1.0.0/16");
  r.attrs.as_path = net::AsPath{65001};
  r.attrs.next_hop = Ipv4Address::parse("10.0.0.1");
  r.learned_from = 1;
  r.peer_router_id = Ipv4Address::parse("10.0.0.1");
  server.announce(r);

  std::stringstream ss;
  write_rib_dump(ss, server);
  std::string data = ss.str();
  // Find the RIB record's peer-index field and wreck it. The index table
  // record is first; the RIB record's entry index is 6 bytes after its
  // prefix field. Easier: flip the last-but-N bytes until decode fails
  // with the right message — deterministic here: the peer index is at a
  // fixed offset from the end (attrs are fixed for this route).
  // attr block for {origin, as_path(1), next_hop} = 3+9+7 = 19 bytes,
  // preceded by u16 len and u32 orig-time; index u16 sits 27 bytes from
  // the end.
  data[data.size() - 27] = 0x7F;
  std::stringstream corrupted(data);
  EXPECT_THROW(read_rib_dump(corrupted), std::runtime_error);
}

}  // namespace
}  // namespace sdx::bgp
