/// Tests for the data-plane substrate: flow table (priorities, cookies,
/// counters, classifier install), switch simulator, ARP responder, border
/// router (FIB → ARP → frame) and the end-to-end fabric harness.

#include <gtest/gtest.h>

#include "dataplane/fabric.hpp"
#include "policy/compile.hpp"

namespace sdx::dp {
namespace {

using net::Field;
using net::FlowMatch;
using net::Ipv4Address;
using net::Ipv4Prefix;
using net::MacAddress;
using net::PacketBuilder;
using policy::ActionSeq;

FlowRule rule(std::uint32_t priority, FlowMatch match, net::PortId out,
              std::uint64_t cookie = 0) {
  FlowRule r;
  r.priority = priority;
  r.match = std::move(match);
  r.actions = {ActionSeq::set(Field::kPort, out)};
  r.cookie = cookie;
  return r;
}

/// The whole FlowTable contract is exercised under both lookup strategies:
/// the classified pipeline (default) and the linear reference scan.
class FlowTableTest : public ::testing::TestWithParam<FlowTable::LookupMode> {
 protected:
  void SetUp() override { t.set_lookup_mode(GetParam()); }
  FlowTable t;
};

INSTANTIATE_TEST_SUITE_P(
    Modes, FlowTableTest,
    ::testing::Values(FlowTable::LookupMode::kClassified,
                      FlowTable::LookupMode::kLinear),
    [](const auto& info) {
      return info.param == FlowTable::LookupMode::kClassified ? "classified"
                                                              : "linear";
    });

TEST_P(FlowTableTest, HigherPriorityWins) {
  t.install(rule(10, FlowMatch::on(Field::kDstPort, 80), 1));
  t.install(rule(20, FlowMatch::on(Field::kDstPort, 80), 2));
  auto out = t.process(PacketBuilder().dst_port(80).build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), 2u);
}

TEST_P(FlowTableTest, InsertionOrderBreaksPriorityTies) {
  t.install(rule(10, FlowMatch::on(Field::kDstPort, 80), 1));
  t.install(rule(10, FlowMatch::any(), 2));
  auto out = t.process(PacketBuilder().dst_port(80).build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), 1u);  // earlier install wins the tie
}

TEST_P(FlowTableTest, MissAndDropAccounting) {
  FlowRule drop_rule;
  drop_rule.priority = 5;
  drop_rule.match = FlowMatch::on(Field::kDstPort, 22);
  t.install(drop_rule);

  EXPECT_TRUE(t.process(PacketBuilder().dst_port(22).build()).empty());
  EXPECT_TRUE(t.process(PacketBuilder().dst_port(80).build()).empty());
  EXPECT_EQ(t.total_matched(), 1u);
  EXPECT_EQ(t.total_missed(), 1u);
  EXPECT_EQ(t.rules()[0]->packet_count, 1u);
}

TEST_P(FlowTableTest, CookieRemoval) {
  t.install(rule(1, FlowMatch::any(), 1, /*cookie=*/7));
  t.install(rule(2, FlowMatch::any(), 2, /*cookie=*/8));
  t.install(rule(3, FlowMatch::any(), 3, /*cookie=*/7));
  EXPECT_EQ(t.remove_by_cookie(7), 2u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rules()[0]->cookie, 8u);
  EXPECT_EQ(t.remove_by_cookie(7), 0u);
}

TEST_P(FlowTableTest, InstallClassifierPreservesOrder) {
  // Classifier order (index 0 = highest) must survive the priority mapping.
  policy::Policy p = (policy::match(Field::kDstPort, 80) >> policy::fwd(1)) +
                     (policy::match(Field::kSrcPort, 9) >> policy::fwd(2));
  auto c = policy::compile(p);
  t.install_classifier(c, 1000, 1);
  ASSERT_EQ(t.size(), c.size());
  for (int i = 0; i < 50; ++i) {
    auto h = PacketBuilder()
                 .dst_port(i % 2 ? 80 : 443)
                 .src_port(i % 3 ? 9 : 10)
                 .build();
    auto via_classifier = c.evaluate(h);
    auto via_table = t.process(h);
    EXPECT_EQ(via_classifier, via_table);
  }
}

TEST_P(FlowTableTest, FastBandOverridesBaseBand) {
  t.install(rule(1000, FlowMatch::on(Field::kDstPort, 80), 1, 1));
  t.install(rule(1u << 24, FlowMatch::on(Field::kDstPort, 80), 9, 2));
  EXPECT_EQ(t.process(PacketBuilder().dst_port(80).build())[0].port(), 9u);
  t.remove_by_cookie(2);
  EXPECT_EQ(t.process(PacketBuilder().dst_port(80).build())[0].port(), 1u);
}

TEST_P(FlowTableTest, RulesViewIsMatchOrderedAndIndexable) {
  t.install(rule(10, FlowMatch::on(Field::kDstPort, 80), 1));
  t.install(rule(30, FlowMatch::on(Field::kDstPort, 81), 2));
  t.install(rule(20, FlowMatch::on(Field::kDstPort, 82), 3));
  const auto view = t.rules();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0]->priority, 30u);
  EXPECT_EQ(view[1]->priority, 20u);
  EXPECT_EQ(view[2]->priority, 10u);
  const FlowRule* hit = t.lookup(PacketBuilder().dst_port(82).build());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(t.index_of(hit), std::optional<std::size_t>(1));
  FlowRule foreign;
  EXPECT_EQ(t.index_of(&foreign), std::nullopt);
}

TEST(SwitchTest, CountsPerPortAndDropsHairpin) {
  SwitchSim sw;
  sw.table().install(rule(1, FlowMatch::on(Field::kPort, 1), 2));
  sw.table().install(rule(1, FlowMatch::on(Field::kPort, 2), 2));

  auto out = sw.inject(PacketBuilder().port(1).build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port(), 2u);

  // Ingress port 2, egress port 2: hairpin suppressed.
  EXPECT_TRUE(sw.inject(PacketBuilder().port(2).build()).empty());

  EXPECT_EQ(sw.rx_packets(1), 1u);
  EXPECT_EQ(sw.rx_packets(2), 1u);
  EXPECT_EQ(sw.tx_packets(2), 1u);
  EXPECT_EQ(sw.dropped(), 1u);
  sw.reset_counters();
  EXPECT_EQ(sw.rx_packets(1), 0u);
}

TEST(ArpTest, ResolveBindUnbind) {
  ArpResponder arp;
  auto ip = Ipv4Address::parse("172.16.0.1");
  auto mac = MacAddress(0x02'00'00'00'00'07ull);
  EXPECT_FALSE(arp.resolve(ip).has_value());
  arp.bind(ip, mac);
  EXPECT_EQ(arp.resolve(ip), mac);
  arp.bind(ip, MacAddress(0x02'00'00'00'00'08ull));  // rebind wins
  EXPECT_EQ(arp.resolve(ip)->bits(), 0x02'00'00'00'00'08ull);
  EXPECT_TRUE(arp.unbind(ip));
  EXPECT_FALSE(arp.unbind(ip));
  EXPECT_EQ(arp.queries(), 3u);
  EXPECT_EQ(arp.misses(), 1u);
}

class BorderRouterFixture : public ::testing::Test {
 protected:
  BorderRouterFixture()
      : router(65001, 3, MacAddress(0x00'16'3E'00'00'03ull),
               Ipv4Address::parse("10.0.0.3")) {
    bgp::UpdateMessage msg;
    bgp::RouteAttributes attrs;
    attrs.as_path = net::AsPath{65002};
    attrs.next_hop = Ipv4Address::parse("172.16.0.1");  // a VNH
    msg.attrs = attrs;
    msg.nlri = {Ipv4Prefix::parse("100.1.0.0/16")};
    router.process_update(msg);
    arp.bind(Ipv4Address::parse("172.16.0.1"),
             MacAddress(0x02'00'00'00'00'01ull));
  }
  ArpResponder arp;
  BorderRouter router;
};

TEST_F(BorderRouterFixture, TagsFramesWithResolvedVmac) {
  auto frame = router.forward(
      PacketBuilder().dst_ip("100.1.2.3").dst_port(80).build(), arp);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->dst_mac().bits(), 0x02'00'00'00'00'01ull);
  EXPECT_EQ(frame->src_mac(), router.mac());
  EXPECT_EQ(frame->port(), 3u);
  EXPECT_EQ(frame->get(Field::kEthType), net::kEthTypeIpv4);
  EXPECT_EQ(router.forwarded(), 1u);
}

TEST_F(BorderRouterFixture, BlackholesWithoutRoute) {
  EXPECT_FALSE(
      router.forward(PacketBuilder().dst_ip("99.0.0.1").build(), arp));
  EXPECT_EQ(router.blackholed(), 1u);
}

TEST_F(BorderRouterFixture, BlackholesWithoutArpAnswer) {
  bgp::UpdateMessage msg;
  bgp::RouteAttributes attrs;
  attrs.as_path = net::AsPath{65003};
  attrs.next_hop = Ipv4Address::parse("172.16.9.9");  // unbound
  msg.attrs = attrs;
  msg.nlri = {Ipv4Prefix::parse("101.0.0.0/16")};
  router.process_update(msg);
  EXPECT_FALSE(
      router.forward(PacketBuilder().dst_ip("101.0.0.1").build(), arp));
}

TEST_F(BorderRouterFixture, WithdrawalRemovesFibEntry) {
  bgp::UpdateMessage msg;
  msg.withdrawn = {Ipv4Prefix::parse("100.1.0.0/16")};
  router.process_update(msg);
  EXPECT_FALSE(
      router.forward(PacketBuilder().dst_ip("100.1.2.3").build(), arp));
}

TEST_F(BorderRouterFixture, AcceptsOwnMacAndBroadcastOnly) {
  EXPECT_TRUE(router.accepts(
      PacketBuilder().dst_mac(router.mac()).build()));
  EXPECT_TRUE(router.accepts(
      PacketBuilder().dst_mac(MacAddress::broadcast()).build()));
  EXPECT_FALSE(router.accepts(
      PacketBuilder().dst_mac(MacAddress(0x42)).build()));
}

TEST(FabricTest, AttachRejectsPortCollision) {
  Fabric fabric;
  BorderRouter r1(65001, 1, MacAddress(1), Ipv4Address::parse("10.0.0.1"));
  BorderRouter r2(65002, 1, MacAddress(2), Ipv4Address::parse("10.0.0.2"));
  fabric.attach(r1);
  EXPECT_THROW(fabric.attach(r2), std::invalid_argument);
  EXPECT_EQ(fabric.router_at(1), &r1);
  EXPECT_EQ(fabric.router_at(9), nullptr);
}

TEST(FabricTest, EndToEndSendDeliversAndMarksAcceptance) {
  Fabric fabric;
  BorderRouter src(65001, 1, MacAddress(0x00'16'3E'00'00'01ull),
                   Ipv4Address::parse("10.0.0.1"));
  BorderRouter dst(65002, 2, MacAddress(0x00'16'3E'00'00'02ull),
                   Ipv4Address::parse("10.0.0.2"));
  fabric.attach(src);
  fabric.attach(dst);

  // src learns a route whose next hop is dst's router address (plain IXP
  // peering, no VNH) — the fabric ARP table already has the binding.
  bgp::UpdateMessage msg;
  bgp::RouteAttributes attrs;
  attrs.as_path = net::AsPath{65002};
  attrs.next_hop = dst.ip();
  msg.attrs = attrs;
  msg.nlri = {Ipv4Prefix::parse("100.0.0.0/8")};
  src.process_update(msg);

  // Forwarding rule: anything addressed to dst's MAC goes to port 2.
  fabric.sdx_switch().table().install(
      rule(1, FlowMatch::on(Field::kDstMac, dst.mac().bits()), 2));

  auto deliveries =
      fabric.send(src, PacketBuilder().dst_ip("100.1.1.1").build());
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].port, 2u);
  EXPECT_EQ(deliveries[0].receiver, &dst);
  EXPECT_TRUE(deliveries[0].accepted);
}

TEST(FabricTest, DeliveryToUnattachedPortIsNotAccepted) {
  Fabric fabric;
  BorderRouter src(65001, 1, MacAddress(0x11), Ipv4Address::parse("10.0.0.1"));
  fabric.attach(src);
  fabric.sdx_switch().table().install(rule(1, FlowMatch::any(), 5));
  auto deliveries =
      fabric.inject(PacketBuilder().port(1).dst_ip("1.2.3.4").build());
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].receiver, nullptr);
  EXPECT_FALSE(deliveries[0].accepted);
}

}  // namespace
}  // namespace sdx::dp
