/// Tests for the scenario language: parsing, execution semantics,
/// assertions, and error handling for every command family.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sdx/scenario.hpp"

namespace sdx::core {
namespace {

class ScenarioFixture : public ::testing::Test {
 protected:
  /// Executes lines, asserting each succeeds; returns the last output.
  std::string run_ok(std::initializer_list<const char*> lines) {
    std::string last;
    for (const char* line : lines) {
      auto result = interp.execute_line(line);
      EXPECT_TRUE(result.ok) << line << " -> " << result.output;
      last = result.output;
    }
    return last;
  }

  std::string run_fail(const char* line) {
    auto result = interp.execute_line(line);
    EXPECT_FALSE(result.ok) << line;
    return result.output;
  }

  ScenarioInterpreter interp;
};

TEST_F(ScenarioFixture, CommentsAndBlankLinesAreNoOps) {
  EXPECT_TRUE(interp.execute_line("").ok);
  EXPECT_TRUE(interp.execute_line("   ").ok);
  EXPECT_TRUE(interp.execute_line("# a comment").ok);
  EXPECT_TRUE(interp.execute_line("participant A 65001 # trailing").ok);
}

TEST_F(ScenarioFixture, ParticipantLifecycle) {
  run_ok({"participant A 65001", "participant B 65002 ports 2",
          "remote T 65010"});
  EXPECT_EQ(interp.runtime().participants().size(), 3u);
  EXPECT_EQ(interp.runtime().find("B")->ports.size(), 2u);
  EXPECT_TRUE(interp.runtime().find("T")->is_remote());
  run_fail("participant A 65009");       // duplicate
  run_fail("participant X notanumber");  // bad ASN
  run_fail("participant X 1 ports 0");   // zero ports
}

TEST_F(ScenarioFixture, AnnounceWithdrawRoundTrip) {
  run_ok({"participant A 65001", "participant B 65002",
          "announce B 100.1.0.0/16 path 65002 7"});
  EXPECT_TRUE(interp.runtime().route_server().best_route(
      1, net::Ipv4Prefix::parse("100.1.0.0/16")));
  run_ok({"withdraw B 100.1.0.0/16"});
  EXPECT_FALSE(interp.runtime().route_server().best_route(
      1, net::Ipv4Prefix::parse("100.1.0.0/16")));
  run_fail("announce Z 1.0.0.0/8");          // unknown participant
  run_fail("announce B 1.0.0.0");            // not a prefix
  run_fail("announce B 1.0.0.0/8 path");     // empty path
}

TEST_F(ScenarioFixture, Figure1EndToEnd) {
  std::istringstream script(R"(
participant A 65001
participant B 65002 ports 2
participant C 65003
announce B 100.1.0.0/16 path 65002 900 10
announce C 100.1.0.0/16 path 65003 10
outbound A match dstport=80 -> B
inbound B match srcip=0.0.0.0/1 port 0
inbound B match srcip=128.0.0.0/1 port 1
install
send A srcip=96.25.160.5 dstip=100.1.2.3 dstport=80
expect port B 0
send A srcip=200.1.1.1 dstip=100.1.2.3 dstport=80
expect port B 1
send A srcip=96.25.160.5 dstip=100.1.2.3 dstport=53
expect port C 0
audit
)");
  std::ostringstream out;
  EXPECT_EQ(interp.run(script, out), 0u) << out.str();
}

TEST_F(ScenarioFixture, VerifyCommandProvesInstalledStateClean) {
  run_fail("verify");  // nothing installed yet
  run_ok({"participant A 65001", "participant B 65002 ports 2",
          "participant C 65003",
          "announce B 100.1.0.0/16 path 65002 900 10",
          "announce C 100.1.0.0/16 path 65003 10",
          "outbound A match dstport=80 -> B",
          "inbound B match srcip=0.0.0.0/1 port 0",
          "inbound B match srcip=128.0.0.0/1 port 1", "install"});
  const auto clean = run_ok({"verify"});
  EXPECT_NE(clean.find("verify clean"), std::string::npos) << clean;
  EXPECT_NE(clean.find("classes"), std::string::npos) << clean;
  // The proof covers post-install churn through the fast path, too.
  run_ok({"withdraw C 100.1.0.0/16"});
  EXPECT_NE(run_ok({"verify"}).find("verify clean"), std::string::npos);
}

TEST_F(ScenarioFixture, TrafficSweepDeliversThroughBatchPath) {
  run_ok({"participant A 65001", "participant B 65002 ports 2",
          "participant C 65003",
          "announce B 100.1.0.0/16 path 65002 900 10",
          "announce C 100.1.0.0/16 path 65003 10",
          "outbound A match dstport=80 -> B",
          "inbound B match srcip=0.0.0.0/1 port 0",
          "inbound B match srcip=128.0.0.0/1 port 1", "install"});
  const auto out =
      run_ok({"traffic A count 256 flows 8 seed 7 burst 64 "
              "srcip=96.25.160.5 dstip=100.1.2.3 dstport=80"});
  // Every generated packet is dst-port 80 toward the announced /16, so
  // all 256 land at B (outbound policy), and the skewed flow sampling
  // must surface a heavy-hitter source block.
  EXPECT_NE(out.find("256 pkts, 256 delivered"), std::string::npos) << out;
  EXPECT_NE(out.find("B:256"), std::string::npos) << out;
  EXPECT_NE(out.find("top 96.25."), std::string::npos) << out;

  // Non-80 traffic follows BGP best path to C; a burst that doesn't
  // divide the count still delivers everything exactly once.
  const auto dns =
      run_ok({"traffic A count 100 flows 3 burst 7 "
              "srcip=96.25.160.5 dstip=100.1.2.3 dstport=53"});
  EXPECT_NE(dns.find("100 pkts, 100 delivered"), std::string::npos) << dns;
  EXPECT_NE(dns.find("C:100"), std::string::npos) << dns;

  run_fail("traffic A count 0 flows 4");  // count must be positive
  run_fail("traffic Z count 8 flows 2");  // unknown participant
}

TEST_F(ScenarioFixture, ExpectationsCatchWrongOutcomes) {
  run_ok({"participant A 65001", "participant B 65002",
          "announce B 100.1.0.0/16", "install",
          "send A dstip=100.1.2.3 dstport=80"});
  run_fail("expect drop");                 // it was delivered
  run_ok({"expect port B 0"});
  run_fail("expect port A 0");             // wrong port
  run_ok({"send A dstip=99.0.0.1"});       // no route
  run_ok({"expect drop"});
  run_fail("expect port B 0");
}

TEST_F(ScenarioFixture, InboundRewriteAndDstipExpectation) {
  run_ok({"participant A 65001", "participant B 65002", "remote T 65010",
          "announce B 74.125.0.0/16 path 65002 16509",
          "inbound T match dstip=74.125.1.1 srcip=96.25.160.0/24 "
          "set dstip=74.125.224.161",
          "install",
          "send A srcip=96.25.160.9 dstip=74.125.1.1 dstport=80"});
  run_ok({"expect port B 0", "expect dstip 74.125.224.161"});
}

TEST_F(ScenarioFixture, ChainCommand) {
  run_ok({"participant S 65001", "participant M 65002",
          "participant D 65003", "announce D 203.0.113.0/24",
          "chain S via M match dstport=80 dstip=203.0.113.0/24",
          "install",
          "send S dstip=203.0.113.5 dstport=80", "expect port M 0"});
  run_fail("chain S via match dstport=80");  // no middleboxes
}

TEST_F(ScenarioFixture, MultiSwitchCommands) {
  run_ok({"participant A 65001", "participant B 65002",
          "announce B 100.1.0.0/16", "install",
          "topology switches 2", "topology place A 0 0",
          "topology place B 0 1", "topology link 0 1", "install-multi",
          "send A dstip=100.1.2.3 dstport=80", "expect port B 0"});
  // A plain re-install invalidates the multi deployment.
  run_ok({"install"});
  run_ok({"send A dstip=100.1.2.3 dstport=80", "expect port B 0"});
  // Error paths.
  run_fail("topology place Z 0 0");
  run_fail("topology place A 9 0");
  run_fail("topology link 0 0");
}

TEST_F(ScenarioFixture, InstallMultiRequiresTopologyAndInstall) {
  run_ok({"participant A 65001"});
  run_fail("install-multi");
  run_ok({"topology switches 1"});
  run_fail("install-multi");  // not installed yet
}

TEST_F(ScenarioFixture, RpkiCommands) {
  run_ok({"participant A 65001", "remote T 65010",
          "rpki add 198.18.0.0/24 as 65010", "rpki mode remote",
          "announce T 198.18.0.0/24"});
  run_fail("announce T 8.8.8.0/24");  // no ROA
  run_fail("rpki mode sideways");
}

TEST_F(ScenarioFixture, ShowCommandsAfterInstall) {
  run_fail("show stats");  // before install
  run_ok({"participant A 65001", "participant B 65002",
          "announce B 1.0.0.0/8", "install"});
  EXPECT_NE(run_ok({"show stats"}).find("rules="), std::string::npos);
  EXPECT_FALSE(run_ok({"show rules 5"}).empty());
  run_ok({"show log"});
  run_fail("show nonsense");
}

TEST_F(ScenarioFixture, RecompileCoalescesFastPathRules) {
  run_ok({"participant A 65001", "participant B 65002",
          "participant C 65003",
          "announce B 100.1.0.0/16 path 65002 9",
          "outbound A match dstport=80 -> B", "install",
          "announce C 100.1.0.0/16 path 65003",  // shorter: fast path fires
          "recompile",
          "send A dstip=100.1.2.3 dstport=53", "expect port C 0"});
}

TEST(ScenarioScripts, ShippedScriptsRunClean) {
  for (const char* name : {"figure1.sdx", "load_balancer.sdx",
                           "service_chain.sdx", "multi_switch.sdx",
                           "verify_safety.sdx"}) {
    std::ifstream file(std::string(SDX_SOURCE_DIR) +
                       "/examples/scenarios/" + name);
    ASSERT_TRUE(file.is_open()) << name;
    ScenarioInterpreter interp;
    std::ostringstream out;
    EXPECT_EQ(interp.run(file, out), 0u) << name << "\n" << out.str();
  }
}

TEST_F(ScenarioFixture, RunReportsFailuresWithLineNumbers) {
  std::istringstream script("participant A 65001\nbogus command\n");
  std::ostringstream out;
  EXPECT_EQ(interp.run(script, out), 1u);
  EXPECT_NE(out.str().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace sdx::core
