/// Batch/per-packet equivalence fuzz for the burst lookup path: random
/// rule tables (overlapping masks, priority ties, adversarial shapes) ×
/// random bursts salted with duplicate and near-duplicate packets, checked
/// for identical rule hits and identical counter totals at burst sizes
/// {1, 7, 64, 1024}, plus 4-thread concurrent process_batch (the TSan
/// target) and the oracle's planted-desync seam.

#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>
#include <vector>

#include "dataplane/flow_table.hpp"
#include "netbase/rng.hpp"

namespace sdx::dp {
namespace {

using net::Field;
using net::FieldMatch;
using net::FlowMatch;
using net::Ipv4Prefix;
using net::PacketHeader;
using net::SplitMix64;
using policy::ActionSeq;

VmacLaneSpec default_spec() {
  VmacLaneSpec s;
  s.enabled = true;
  s.top_value = 0x02ull << 40;
  s.top_mask = 0xFFull << 40;
  s.group_bits = 20;
  s.nexthop_bits = 12;
  s.attr_bits = 8;
  return s;
}

std::uint64_t encode_vmac(const VmacLaneSpec& s, std::uint64_t group,
                          std::uint64_t nh, std::uint64_t attrs) {
  return s.top_value | (attrs << s.attr_shift()) |
         (nh << s.nexthop_shift()) | group;
}

/// Same shape population as test_packet_classifier's generator: compiled
/// SDX shapes plus adversarial extras, narrow priorities so ties are
/// common, occasional drop rules.
FlowRule random_rule(SplitMix64& rng, const VmacLaneSpec& spec, int i) {
  const auto prio = static_cast<std::uint32_t>(rng.range(0, 8));
  const auto out = static_cast<net::PortId>(i + 1);
  const std::uint64_t cookie = rng.range(1, 4);
  FlowMatch m;
  switch (rng.below(8)) {
    case 0:
      m = FlowMatch::on(Field::kDstMac,
                        encode_vmac(spec, rng.below(64), rng.below(8),
                                    rng.below(16)));
      break;
    case 1:
      m.set(Field::kDstMac,
            FieldMatch::masked(
                spec.top_value | (rng.below(8) << spec.nexthop_shift()),
                spec.top_mask | spec.nexthop_field_mask()));
      break;
    case 2: {
      const std::uint64_t b = 1ull << (spec.attr_shift() + rng.below(8));
      m.set(Field::kDstMac,
            FieldMatch::masked(spec.top_value | b, spec.top_mask | b));
      break;
    }
    case 3: {
      const std::uint64_t b = 1ull << (spec.attr_shift() + rng.below(8));
      m.set(Field::kPort, FieldMatch::exact(rng.range(1, 4)));
      m.set(Field::kDstMac,
            FieldMatch::masked(spec.top_value | b, spec.top_mask | b));
      if (rng.below(2) == 0) {
        m.set(Field::kDstPort, FieldMatch::exact(rng.below(4) * 100));
      }
      break;
    }
    case 4:
      m.set(Field::kDstIp,
            FieldMatch::prefix(Ipv4Prefix(
                net::Ipv4Address(static_cast<std::uint32_t>(rng()) &
                                 0xFFFF0000u),
                static_cast<int>(rng.range(8, 24)))));
      break;
    case 5:
      m.set(Field::kSrcIp,
            FieldMatch::prefix(Ipv4Prefix(
                net::Ipv4Address(static_cast<std::uint32_t>(rng()) &
                                 0xFF000000u),
                8)));
      m.set(Field::kDstIp,
            FieldMatch::prefix(Ipv4Prefix(
                net::Ipv4Address(static_cast<std::uint32_t>(rng()) &
                                 0xFFFFFF00u),
                static_cast<int>(rng.range(16, 28)))));
      break;
    case 6: {  // adversarial: arbitrary mask over the dst-MAC, no guard
      const std::uint64_t mask = rng() & ((1ull << 48) - 1);
      m.set(Field::kDstMac, FieldMatch::masked(rng(), mask));
      break;
    }
    default:  // wildcard catch-all
      break;
  }
  FlowRule r;
  r.priority = prio;
  r.match = std::move(m);
  r.actions = {ActionSeq::set(Field::kPort, out)};
  r.cookie = cookie;
  if (rng.below(8) == 0) r.actions.clear();
  return r;
}

PacketHeader packet_matching(SplitMix64& rng, const FlowMatch& m) {
  PacketHeader h;
  for (auto f : net::kAllFields) {
    const FieldMatch& fm = m.field(f);
    std::uint64_t v = rng();
    if (f == Field::kDstMac || f == Field::kSrcMac) v &= (1ull << 48) - 1;
    if (net::is_ip_field(f)) v &= 0xFFFFFFFFull;
    if (f == Field::kPort) v = rng.range(1, 4);
    h.set(f, (fm.value() & fm.mask()) | (v & ~fm.mask()));
  }
  return h;
}

PacketHeader random_packet(SplitMix64& rng, const VmacLaneSpec& spec) {
  PacketHeader h;
  for (auto f : net::kAllFields) h.set(f, rng());
  if (rng.below(2) == 0) {
    h.set(Field::kDstMac,
          encode_vmac(spec, rng.below(64), rng.below(8), rng.below(16)));
  } else {
    h.set(Field::kDstMac, h.get(Field::kDstMac) & ((1ull << 48) - 1));
  }
  return h;
}

/// Burst with the duplicate structure of real traffic: ~25% exact
/// duplicates of earlier packets, ~20% near-duplicates (one field
/// flipped), the rest a mix of rule-targeted and random packets.
std::vector<PacketHeader> make_burst(SplitMix64& rng, std::size_t n,
                                     const std::vector<FlowMatch>& matches,
                                     const VmacLaneSpec& spec) {
  std::vector<PacketHeader> burst;
  burst.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t roll = rng.below(16);
    if (!burst.empty() && roll < 4) {
      burst.push_back(burst[rng.below(burst.size())]);
    } else if (!burst.empty() && roll < 7) {
      PacketHeader h = burst[rng.below(burst.size())];
      const auto f = net::kAllFields[rng.below(net::kAllFields.size())];
      h.set(f, h.get(f) ^ (1ull << rng.below(16)));
      burst.push_back(h);
    } else if (roll < 12 && !matches.empty()) {
      burst.push_back(
          packet_matching(rng, matches[rng.below(matches.size())]));
    } else {
      burst.push_back(random_packet(rng, spec));
    }
  }
  return burst;
}

bool same_header(const PacketHeader& a, const PacketHeader& b) {
  for (auto f : net::kAllFields) {
    if (a.get(f) != b.get(f)) return false;
  }
  return true;
}

constexpr std::size_t kBurstSizes[] = {1, 7, 64, 1024};

TEST(BatchLookup, RandomizedBurstsMatchPerPacketLookup) {
  SplitMix64 rng(20260809);
  const VmacLaneSpec spec = default_spec();
  for (const std::size_t burst_size : kBurstSizes) {
    for (int round = 0; round < 4; ++round) {
      FlowTable t;
      t.set_vmac_lanes(spec);
      std::vector<FlowMatch> matches;
      const int n = 16 << (2 * round);  // 16 .. 1024 rules
      for (int i = 0; i < n; ++i) {
        FlowRule r = random_rule(rng, spec, i);
        matches.push_back(r.match);
        t.install(std::move(r));
      }
      const auto burst = make_burst(rng, burst_size, matches, spec);

      std::vector<const FlowRule*> batched(burst.size(), nullptr);
      t.lookup_batch(burst, batched);
      for (std::size_t i = 0; i < burst.size(); ++i) {
        ASSERT_EQ(batched[i], t.lookup(burst[i]))
            << "burst=" << burst_size << " rules=" << n << " packet " << i
            << " " << burst[i].to_string();
      }

      // The linear reference batch must agree too (it is the per-packet
      // scan by construction, so this pins lookup_batch's mode dispatch).
      t.set_lookup_mode(FlowTable::LookupMode::kLinear);
      std::vector<const FlowRule*> linear(burst.size(), nullptr);
      t.lookup_batch(burst, linear);
      ASSERT_EQ(batched, linear);
      t.set_lookup_mode(FlowTable::LookupMode::kClassified);
    }
  }
}

TEST(BatchLookup, CounterTotalsAndFramesMatchPerPacketProcessing) {
  const VmacLaneSpec spec = default_spec();
  for (const std::size_t burst_size : kBurstSizes) {
    // Two identical tables from the same seed: one processes the burst
    // packet by packet, the other in one process_batch call.
    const std::uint64_t seed = 77000 + burst_size;
    SplitMix64 ra(seed), rb(seed);
    FlowTable a, b;
    a.set_vmac_lanes(spec);
    b.set_vmac_lanes(spec);
    std::vector<FlowMatch> matches;
    for (int i = 0; i < 256; ++i) {
      FlowRule r = random_rule(ra, spec, i);
      matches.push_back(r.match);
      a.install(std::move(r));
      b.install(random_rule(rb, spec, i));
    }
    SplitMix64 rng(seed ^ 0xBEEF);
    const auto burst = make_burst(rng, burst_size, matches, spec);

    std::vector<PacketHeader> single_frames;
    for (const auto& h : burst) {
      for (auto& out : a.process(h)) single_frames.push_back(out);
    }
    const FlowTable::BatchResult res = b.process_batch(burst);

    EXPECT_EQ(a.total_matched(), b.total_matched()) << "burst=" << burst_size;
    EXPECT_EQ(a.total_missed(), b.total_missed()) << "burst=" << burst_size;
    ASSERT_EQ(res.packets(), burst.size());
    ASSERT_EQ(res.frames.size(), single_frames.size());
    for (std::size_t i = 0; i < res.frames.size(); ++i) {
      EXPECT_TRUE(same_header(res.frames[i], single_frames[i]))
          << "frame " << i << ": " << res.frames[i].to_string() << " vs "
          << single_frames[i].to_string();
    }

    // Per-rule packet counts line up table-to-table (rules() orders both
    // tables identically — same priorities, same insertion sequence).
    const auto rules_a = a.rules();
    const auto rules_b = b.rules();
    ASSERT_EQ(rules_a.size(), rules_b.size());
    for (std::size_t i = 0; i < rules_a.size(); ++i) {
      EXPECT_EQ(rules_a[i]->packet_count.value(),
                rules_b[i]->packet_count.value())
          << "rule " << i << ": " << rules_a[i]->to_string();
    }
  }
}

TEST(BatchLookup, ConcurrentProcessBatchReconcilesCounters) {
  SplitMix64 rng(424242);
  const VmacLaneSpec spec = default_spec();
  FlowTable t;
  t.set_vmac_lanes(spec);
  std::vector<FlowMatch> matches;
  for (int i = 0; i < 512; ++i) {
    FlowRule r = random_rule(rng, spec, i);
    matches.push_back(r.match);
    t.install(std::move(r));
  }
  const auto burst = make_burst(rng, 64, matches, spec);

  // Per-packet reference, computed before any concurrency.
  std::vector<const FlowRule*> expected(burst.size(), nullptr);
  std::uint64_t expected_matched = 0;
  std::unordered_map<const FlowRule*, std::uint64_t> per_rule;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    expected[i] = t.lookup(burst[i]);
    if (expected[i] != nullptr) {
      ++expected_matched;
      ++per_rule[expected[i]];
    }
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  const std::uint64_t matched0 = t.total_matched();
  const std::uint64_t missed0 = t.total_missed();
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&t, &burst, &expected] {
      for (int r = 0; r < kRounds; ++r) {
        std::vector<const FlowRule*> hits(burst.size(), nullptr);
        t.lookup_batch(burst, hits);
        ASSERT_EQ(hits.size(), expected.size());
        for (std::size_t i = 0; i < hits.size(); ++i) {
          ASSERT_EQ(hits[i], expected[i]);
        }
        t.process_batch(burst);
      }
    });
  }
  for (auto& w : workers) w.join();

  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kRounds * burst.size();
  EXPECT_EQ(t.total_matched() - matched0,
            static_cast<std::uint64_t>(kThreads) * kRounds * expected_matched);
  EXPECT_EQ((t.total_matched() - matched0) + (t.total_missed() - missed0),
            total);
  for (const auto& [rule, hits] : per_rule) {
    EXPECT_EQ(rule->packet_count.value(),
              static_cast<std::uint64_t>(kThreads) * kRounds * hits)
        << rule->to_string();
  }
}

TEST(BatchLookup, EmptyAndUniformBurstsAreHandled) {
  const VmacLaneSpec spec = default_spec();
  FlowTable t;
  t.set_vmac_lanes(spec);
  t.install([] {
    FlowRule r;
    r.priority = 5;
    r.match = FlowMatch::on(Field::kDstMac, 0x02ull << 40 | 42);
    r.actions = {ActionSeq::set(Field::kPort, 9)};
    return r;
  }());

  t.lookup_batch({}, {});
  const auto empty = t.process_batch({});
  EXPECT_EQ(empty.packets(), 0u);

  // All-duplicate burst: one classification, scattered to everyone.
  const PacketHeader h = net::PacketBuilder()
                             .dst_mac(net::MacAddress(0x02ull << 40 | 42))
                             .port(1)
                             .build();
  const std::vector<PacketHeader> burst(257, h);
  std::vector<const FlowRule*> hits(burst.size(), nullptr);
  t.lookup_batch(burst, hits);
  for (const FlowRule* r : hits) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->priority, 5u);
  }
  const auto res = t.process_batch(burst);
  EXPECT_EQ(res.frames.size(), burst.size());
  EXPECT_EQ(t.total_matched(), burst.size());
}

TEST(BatchLookup, PlantedDesyncSeamOnlyAffectsBatchPath) {
  const VmacLaneSpec spec = default_spec();
  FlowTable t;
  t.set_vmac_lanes(spec);
  t.install([] {
    FlowRule r;
    r.priority = 1;
    r.match = FlowMatch::on(Field::kDstMac, 0x02ull << 40 | 7);
    r.actions = {ActionSeq::set(Field::kPort, 3)};
    return r;
  }());
  const PacketHeader h = net::PacketBuilder()
                             .dst_mac(net::MacAddress(0x02ull << 40 | 7))
                             .port(1)
                             .build();

  t.plant_batch_desync_for_test();
  std::vector<const FlowRule*> hits(1, nullptr);
  t.lookup_batch({&h, 1}, hits);
  EXPECT_EQ(hits[0], nullptr) << "desync seam must starve the batch path";
  EXPECT_NE(t.lookup(h), nullptr) << "per-packet path must stay correct";
}

}  // namespace
}  // namespace sdx::dp
