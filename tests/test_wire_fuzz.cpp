/// Robustness fuzzing of the binary decoders: arbitrary and mutated bytes
/// must never crash, hang or over-read — they either decode or fail with a
/// diagnostic. Valid messages must survive decode(encode(decode(x)))
/// idempotently.

#include <gtest/gtest.h>

#include <sstream>

#include "bgp/mrt.hpp"
#include "bgp/session.hpp"
#include "bgp/wire.hpp"
#include "fuzz/mutator.hpp"
#include "netbase/rng.hpp"

namespace sdx::bgp {
namespace {

using net::SplitMix64;

std::vector<std::uint8_t> random_bytes(SplitMix64& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, RandomBytesNeverCrashTheDecoder) {
  SplitMix64 rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, rng.below(128));
    auto result = decode(bytes);
    if (result.ok()) {
      // Freak accident of randomness: then it must re-encode cleanly.
      auto bytes2 = encode(*result.message);
      EXPECT_TRUE(decode(bytes2).ok());
    } else {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST_P(WireFuzz, MutatedValidMessagesFailCleanly) {
  SplitMix64 rng(GetParam() * 7 + 1);
  UpdateMessage u;
  RouteAttributes attrs;
  attrs.as_path = net::AsPath{65001, 7, 8};
  attrs.next_hop = net::Ipv4Address::parse("10.0.0.1");
  attrs.local_pref = 200;
  attrs.communities = {make_community(65001, 1), kNoExport};
  u.attrs = attrs;
  u.nlri = {net::Ipv4Prefix::parse("100.1.0.0/16"),
            net::Ipv4Prefix::parse("100.2.128.0/17")};
  u.withdrawn = {net::Ipv4Prefix::parse("9.9.9.0/24")};
  const auto pristine = encode(u);

  for (int i = 0; i < 500; ++i) {
    auto bytes = pristine;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      bytes[rng.below(bytes.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    auto result = decode(bytes);
    if (result.ok()) {
      // A surviving mutation must still round-trip.
      auto again = decode(encode(*result.message));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*again.message, *result.message);
    }
  }
}

TEST_P(WireFuzz, TruncationsAtEveryOffsetFailCleanly) {
  SplitMix64 rng(GetParam() * 13 + 5);
  UpdateMessage u;
  RouteAttributes attrs;
  attrs.as_path = net::AsPath{65001};
  attrs.next_hop = net::Ipv4Address::parse("10.0.0.1");
  u.attrs = attrs;
  u.nlri = {net::Ipv4Prefix::parse("100.1.0.0/16")};
  const auto pristine = encode(u);
  for (std::size_t cut = 0; cut < pristine.size(); ++cut) {
    std::vector<std::uint8_t> prefix_slice(pristine.begin(),
                                           pristine.begin() +
                                               static_cast<std::ptrdiff_t>(cut));
    auto result = decode(prefix_slice);
    EXPECT_FALSE(result.ok()) << "decoded from a " << cut << "-byte cut";
  }
}

// --- shared structured mutators (src/fuzz/mutator.hpp) --------------------
// The same operator library drives the libFuzzer custom mutators and the
// standalone corpus driver; these suites pin its contract in the plain unit
// build: whatever the operators do to an encoded valid message, the decoder
// either round-trips the result or rejects it with a diagnostic.

TEST_P(WireFuzz, SharedOperatorsOnEncodedValidMessages) {
  fuzz::ByteMutator mutator(GetParam() * 31 + 3);
  for (int i = 0; i < 300; ++i) {
    // A valid sampled message with a few field-level perturbations...
    auto bytes = fuzz::sample_wire_bytes(
        mutator.rng(), static_cast<int>(mutator.rng().below(3)));
    // ...then byte-level damage from the shared operator set.
    mutator.mutate(bytes, static_cast<int>(1 + mutator.rng().below(4)));
    auto result = decode(bytes);
    if (result.ok()) {
      auto again = decode(encode(*result.message));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*again.message, *result.message);
    } else {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST_P(WireFuzz, LengthFieldCorruptionFailsCleanly) {
  fuzz::ByteMutator mutator(GetParam() * 17 + 9);
  for (int i = 0; i < 300; ++i) {
    auto bytes = fuzz::sample_wire_bytes(mutator.rng());
    // Targeted big-endian 16-bit corruption: hits the header length field
    // and the withdrawn/path-attribute length prefixes.
    mutator.corrupt_u16be(bytes);
    auto result = decode(bytes);
    if (result.ok()) {
      EXPECT_TRUE(decode(encode(*result.message)).ok());
    } else {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST_P(WireFuzz, TruncationOperatorFailsCleanly) {
  fuzz::ByteMutator mutator(GetParam() * 5 + 2);
  for (int i = 0; i < 300; ++i) {
    auto bytes = fuzz::sample_wire_bytes(mutator.rng());
    mutator.truncate(bytes);
    auto result = decode(bytes);
    if (!result.ok()) {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST_P(WireFuzz, FieldMutatedMessagesStayDecodable) {
  SplitMix64 rng(GetParam() * 101 + 13);
  for (int i = 0; i < 300; ++i) {
    auto msg = fuzz::sample_wire_message(rng);
    fuzz::mutate_wire_fields(msg, rng);
    // Field-aligned mutation keeps the message well-formed: the encoding
    // must decode, and re-encoding the decoded form must reproduce the
    // same bytes. (Not message equality: an OPEN with a 4-octet ASN
    // decodes to AS_TRANS by design.)
    const auto bytes = encode(msg);
    auto result = decode(bytes);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(encode(*result.message), bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(11, 29, 47));

TEST(SessionFuzz, GarbageInputClosesWithoutCrashing) {
  SplitMix64 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Session s(Session::Config{65001, net::Ipv4Address::parse("10.0.0.1")});
    s.start();
    auto junk = random_bytes(rng, 64 + rng.below(256));
    auto events = s.receive(junk);
    // Random bytes essentially never carry a valid marker: the session
    // must end up closed with a queued NOTIFICATION, never wedged.
    if (!events.empty()) {
      EXPECT_EQ(s.state(), Session::State::kClosed);
      EXPECT_FALSE(s.take_output().empty());
    }
    if (s.state() == Session::State::kClosed) {
      // Feeding more data after close is a no-op.
      EXPECT_TRUE(s.receive(junk).empty());
    }
  }
}

TEST(MrtFuzz, RandomStreamsNeverCrashTheReader) {
  SplitMix64 rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    auto bytes = random_bytes(rng, rng.below(200));
    std::stringstream ss(std::string(bytes.begin(), bytes.end()));
    try {
      while (auto record = read_record(ss)) {
        // Decoding any record as BGP4MP may throw — that is fine.
        try {
          (void)decode_bgp4mp(*record);
        } catch (const std::runtime_error&) {
        }
      }
    } catch (const std::runtime_error&) {
      // Clean rejection path.
    }
  }
}

}  // namespace
}  // namespace sdx::bgp
