/// Tests for the synthetic IXP workload generator (§6.1 methodology) and
/// the RIS-like update trace generator + streaming analyzer (§4.3 / Table 1
/// calibration).

#include <gtest/gtest.h>

#include <numeric>

#include "ixp/ixp_generator.hpp"
#include "ixp/trace_stats.hpp"
#include "ixp/update_trace.hpp"
#include "sdx/compiler.hpp"
#include "sdx/vnh_allocator.hpp"

namespace sdx::ixp {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.participants = 100;
  cfg.prefixes = 2000;
  cfg.seed = 11;
  return cfg;
}

TEST(IxpGenerator, DeterministicForSameSeed) {
  auto a = generate_ixp(small_config());
  auto b = generate_ixp(small_config());
  ASSERT_EQ(a.participants.size(), b.participants.size());
  EXPECT_EQ(a.announced_counts, b.announced_counts);
  EXPECT_EQ(a.server.prefix_count(), b.server.prefix_count());
  auto cfg2 = small_config();
  cfg2.seed = 12;
  auto c = generate_ixp(cfg2);
  EXPECT_NE(a.announced_counts, c.announced_counts);
}

TEST(IxpGenerator, EveryPrefixIsOriginated) {
  auto ixp = generate_ixp(small_config());
  EXPECT_EQ(ixp.server.prefix_count(), ixp.prefixes.size());
  const std::size_t total = std::accumulate(
      ixp.announced_counts.begin(), ixp.announced_counts.end(),
      std::size_t{0});
  EXPECT_EQ(total, ixp.prefixes.size());
}

TEST(IxpGenerator, PrefixCountsAreHeavilySkewed) {
  GeneratorConfig cfg = small_config();
  cfg.participants = 300;
  cfg.prefixes = 20000;
  auto ixp = generate_ixp(cfg);
  auto sorted = ixp.announced_counts;
  std::sort(sorted.rbegin(), sorted.rend());
  // §6.1: ~1% of ASes announce >50% of prefixes...
  std::size_t top1 = 0;
  for (std::size_t i = 0; i < sorted.size() / 100 + 1; ++i) top1 += sorted[i];
  EXPECT_GT(top1 * 2, cfg.prefixes);
  // ...and the bottom 90% combined announce only a sliver.
  std::size_t bottom90 = 0;
  for (std::size_t i = sorted.size() / 10; i < sorted.size(); ++i) {
    bottom90 += sorted[i];
  }
  EXPECT_LT(bottom90 * 10, cfg.prefixes);
}

TEST(IxpGenerator, TransitConesCreateAlternateRoutes) {
  auto ixp = generate_ixp(small_config());
  std::size_t multi = 0;
  for (auto prefix : ixp.prefixes) {
    const auto* cands = ixp.server.candidates(prefix);
    ASSERT_NE(cands, nullptr);
    if (cands->size() > 1) ++multi;
  }
  EXPECT_GT(multi, 0u);
}

TEST(IxpGenerator, SomeParticipantsHaveTwoPorts) {
  auto ixp = generate_ixp(small_config());
  std::size_t multi = 0;
  for (const auto& p : ixp.participants) multi += p.ports.size() > 1;
  EXPECT_GT(multi, 5u);
  EXPECT_LT(multi, ixp.participants.size() / 2);
}

TEST(IxpGenerator, ProfilesMatchTable1) {
  EXPECT_EQ(IxpProfile::amsix().total_peers, 639u);
  EXPECT_EQ(IxpProfile::decix().prefixes, 518391u);
  EXPECT_EQ(IxpProfile::linx().collector_peers, 71u);
  EXPECT_NEAR(IxpProfile::amsix().frac_prefixes_updated, 0.0988, 1e-6);
}

TEST(PolicySynth, InstallsValidClauses) {
  auto ixp = generate_ixp(small_config());
  const std::size_t clauses = synthesize_policies(ixp, {});
  EXPECT_GT(clauses, 10u);
  std::size_t outbound = 0, inbound = 0;
  for (const auto& p : ixp.participants) {
    core::validate_participant(p, ixp.participants);
    outbound += p.outbound.size();
    inbound += p.inbound.size();
  }
  EXPECT_GT(outbound, 0u);
  EXPECT_GT(inbound, 0u);
  EXPECT_EQ(outbound + inbound, clauses);
}

TEST(PolicySynth, GeneratedWorkloadCompiles) {
  auto ixp = generate_ixp(small_config());
  synthesize_policies(ixp, {});
  core::SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server);
  core::VnhAllocator vnh;
  auto compiled = compiler.compile(vnh);
  EXPECT_GT(compiled.stats.prefix_groups, 0u);
  EXPECT_GT(compiled.stats.final_rules, compiled.stats.prefix_groups);
  EXPECT_EQ(compiled.bindings.size(), compiled.fecs.groups.size());
  // Fabric stays total.
  ASSERT_FALSE(compiled.fabric.empty());
  EXPECT_TRUE(compiled.fabric.rules().back().match.is_wildcard());
}

TEST(UpdateTrace, DeterministicAndTimeOrdered) {
  TraceConfig cfg;
  cfg.duration_s = 3600;
  cfg.prefix_count = 1000;
  cfg.seed = 5;
  auto a = generate_trace_vector(cfg);
  auto b = generate_trace_vector(cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].prefix_index, b[i].prefix_index);
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
    if (i > 0) {
      EXPECT_GE(a[i].timestamp, a[i - 1].timestamp);
    }
    EXPECT_LT(a[i].timestamp, cfg.duration_s + 1000);
    EXPECT_LT(a[i].prefix_index, cfg.prefix_count);
  }
}

TEST(UpdateTrace, MatchesCalibrationTargets) {
  TraceConfig cfg;
  cfg.duration_s = 86400 * 2;
  cfg.prefix_count = 5000;
  cfg.frac_prefixes_updated = 0.12;
  cfg.seed = 9;
  TraceAnalyzer analyzer(5.0);
  generate_trace(cfg, [&analyzer](const TraceEvent& ev) {
    analyzer.feed(ev);
  });
  auto stats = analyzer.finish();
  ASSERT_GT(stats.burst_count, 100u);
  // 75% of bursts affect ≤3 prefixes (paper §4.3.2).
  EXPECT_LE(stats.p75_burst_size, 3.0);
  // Inter-arrival calibration: ≥10 s at p25, >45 s at the median.
  EXPECT_GE(stats.p25_interarrival_s, 8.0);
  EXPECT_GT(stats.median_interarrival_s, 40.0);
  // Only the hot fraction of prefixes sees updates.
  EXPECT_LE(stats.distinct_prefixes,
            static_cast<std::size_t>(0.125 * 5000) + 1);
  EXPECT_GT(stats.distinct_prefixes, 300u);
  // A few withdrawals are mixed in.
  EXPECT_GT(stats.withdrawal_count, 0u);
  EXPECT_GT(stats.announcement_count, stats.withdrawal_count);
}

TEST(UpdateTrace, StreamingAnalyzerMatchesBatchStats) {
  TraceConfig cfg;
  cfg.duration_s = 7200;
  cfg.prefix_count = 500;
  cfg.seed = 77;
  auto events = generate_trace_vector(cfg);
  ASSERT_FALSE(events.empty());

  TraceAnalyzer analyzer(5.0);
  std::vector<bgp::TimedUpdate> stream;
  for (const auto& ev : events) {
    analyzer.feed(ev);
    bgp::TimedUpdate u;
    u.timestamp = ev.timestamp;
    u.prefix = net::Ipv4Prefix(
        net::Ipv4Address(static_cast<std::uint32_t>(ev.prefix_index) << 8),
        24);
    if (!ev.withdrawal) u.attrs = bgp::RouteAttributes{};
    stream.push_back(std::move(u));
  }
  auto streaming = analyzer.finish();
  auto batch = bgp::compute_stats(stream, 5.0);
  EXPECT_EQ(streaming.total_updates, batch.total_updates);
  EXPECT_EQ(streaming.distinct_prefixes, batch.distinct_prefixes);
  EXPECT_EQ(streaming.burst_count, batch.burst_count);
  EXPECT_EQ(streaming.announcement_count, batch.announcement_count);
  EXPECT_DOUBLE_EQ(streaming.p75_burst_size, batch.p75_burst_size);
  EXPECT_DOUBLE_EQ(streaming.max_burst_size, batch.max_burst_size);
}

}  // namespace
}  // namespace sdx::ixp
