/// Unit tests for the two-stage incremental engine beyond the end-to-end
/// oracle equivalence already covered in test_sdx_core: fast-path rule
/// shapes, untouched-prefix short circuits, stale-rule inertness, and
/// runtime priority-band mechanics.

#include <gtest/gtest.h>

#include "sdx/incremental.hpp"
#include "sdx/runtime.hpp"

namespace sdx::core {
namespace {

using net::Field;
using net::Ipv4Prefix;
using net::PacketBuilder;

class IncrementalFixture : public ::testing::Test {
 protected:
  IncrementalFixture() {
    a = rt.add_participant("A", 65001);
    b = rt.add_participant("B", 65002);
    c = rt.add_participant("C", 65003);
    rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
    rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"),
                net::AsPath{65002, 7});
    rt.announce(c, Ipv4Prefix::parse("100.9.0.0/16"), net::AsPath{65003});
    rt.install();
  }
  SdxRuntime rt;
  bgp::ParticipantId a = 0, b = 0, c = 0;
};

TEST_F(IncrementalFixture, FastUpdateAllocatesFreshBindingPerCall) {
  SdxCompiler compiler(rt.participants(), rt.ports(), rt.route_server());
  IncrementalEngine engine(compiler);
  VnhAllocator vnh;
  engine.full_recompile(vnh);
  const auto before = vnh.allocated();

  auto r1 = engine.fast_update(Ipv4Prefix::parse("100.1.0.0/16"), vnh);
  auto r2 = engine.fast_update(Ipv4Prefix::parse("100.1.0.0/16"), vnh);
  ASSERT_TRUE(r1.binding.has_value());
  ASSERT_TRUE(r2.binding.has_value());
  EXPECT_NE(r1.binding->vmac, r2.binding->vmac);  // "assume a new VNH"
  EXPECT_EQ(vnh.allocated(), before + 2);
  EXPECT_GT(r1.additional_rules, 0u);
  EXPECT_EQ(r1.additional_rules, r1.rules.size());
}

TEST_F(IncrementalFixture, UntouchedPrefixWithDefaultsStillGetsRules) {
  // 100.9/16 is covered by no clause but has best routes: the fast path
  // must install its default-forwarding rules under the fresh VMAC.
  SdxCompiler compiler(rt.participants(), rt.ports(), rt.route_server());
  IncrementalEngine engine(compiler);
  VnhAllocator vnh;
  engine.full_recompile(vnh);
  auto r = engine.fast_update(Ipv4Prefix::parse("100.9.0.0/16"), vnh);
  ASSERT_TRUE(r.binding.has_value());
  EXPECT_GT(r.additional_rules, 0u);
  // All its rules are default rules: they match the fresh VMAC.
  for (const auto& rule : r.rules) {
    EXPECT_TRUE(rule.match.field(Field::kDstMac).is_exact());
  }
}

TEST_F(IncrementalFixture, FullyWithdrawnPrefixNeedsNothing) {
  rt.route_server().withdraw(b, Ipv4Prefix::parse("100.1.0.0/16"));
  SdxCompiler compiler(rt.participants(), rt.ports(), rt.route_server());
  IncrementalEngine engine(compiler);
  VnhAllocator vnh;
  engine.full_recompile(vnh);
  auto r = engine.fast_update(Ipv4Prefix::parse("100.1.0.0/16"), vnh);
  EXPECT_FALSE(r.binding.has_value());
  EXPECT_EQ(r.additional_rules, 0u);
}

TEST_F(IncrementalFixture, StaleFastRulesAreInertAfterReadvertisement) {
  // After an update, the old VMAC's rules linger at high priority (the
  // paper accepts this: "it can also produce more rules than needed") —
  // but routers tag the *new* VMAC, so behaviour must follow the update.
  const auto p = Ipv4Prefix::parse("100.1.0.0/16");
  const auto before = rt.fabric().sdx_switch().table().size();
  // C takes over the prefix with a strictly better route.
  rt.announce(c, p, net::AsPath{65003});
  EXPECT_GT(rt.fabric().sdx_switch().table().size(), before);
  auto out =
      rt.send(a, PacketBuilder().dst_ip("100.1.1.1").dst_port(53).build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port, rt.participant(c).ports[0].id);
  // Policy traffic still prefers B (it still exports the prefix).
  out = rt.send(a, PacketBuilder().dst_ip("100.1.1.1").dst_port(80).build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].port, rt.participant(b).ports[0].id);
}

TEST_F(IncrementalFixture, BackgroundPassShedsFastPathRules) {
  const auto baseline = rt.compiled().fabric.size();
  for (int i = 0; i < 5; ++i) {
    rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"),
                net::AsPath{65003, static_cast<net::Asn>(100 + i)});
  }
  EXPECT_GT(rt.fabric().sdx_switch().table().size(), baseline);
  rt.background_recompile();
  EXPECT_EQ(rt.fabric().sdx_switch().table().size(),
            rt.compiled().fabric.size());
  // And the coalesced table uses the minimal binding set again.
  EXPECT_EQ(rt.compiled().bindings.size(),
            rt.compiled().fecs.groups.size());
}

TEST_F(IncrementalFixture, UpdateLogRecordsCosts) {
  rt.clear_update_log();
  rt.announce(c, Ipv4Prefix::parse("100.1.0.0/16"), net::AsPath{65003});
  rt.withdraw(c, Ipv4Prefix::parse("100.1.0.0/16"));
  ASSERT_EQ(rt.update_log().size(), 2u);
  for (const auto& e : rt.update_log()) {
    EXPECT_EQ(e.prefix, Ipv4Prefix::parse("100.1.0.0/16"));
    EXPECT_GE(e.fast_seconds, 0.0);
    EXPECT_LT(e.fast_seconds, 1.0);  // the "sub-second" §4.3.2 claim
  }
}

TEST(IncrementalNoVmac, FastPathIsIdleWithoutGrouping) {
  CompileOptions options;
  options.vmac_grouping = false;
  SdxRuntime rt(bgp::DecisionConfig{}, options);
  auto a = rt.add_participant("A", 65001);
  auto b = rt.add_participant("B", 65002);
  rt.set_outbound(a, {OutboundClause{ClauseMatch{}.dst_port(80), b}});
  rt.announce(b, Ipv4Prefix::parse("100.1.0.0/16"));
  rt.install();
  SdxCompiler compiler(rt.participants(), rt.ports(), rt.route_server(),
                       options);
  IncrementalEngine engine(compiler);
  VnhAllocator vnh;
  engine.full_recompile(vnh);
  // Without VMAC grouping there is a clause hit, so rules are still
  // emitted — but a pure-default prefix needs none.
  rt.route_server().withdraw(b, Ipv4Prefix::parse("100.1.0.0/16"));
  auto r = engine.fast_update(Ipv4Prefix::parse("100.1.0.0/16"), vnh);
  EXPECT_EQ(r.additional_rules, 0u);
}

}  // namespace
}  // namespace sdx::core
