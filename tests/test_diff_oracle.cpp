/// The differential oracle's own tests: fault injection plants a known
/// divergence in one side of each equivalence and the oracle must (a)
/// detect it, (b) blame the right oracle, and (c) shrink the failing trace
/// to at most three ops with the delta-debugging minimizer. Clean traces —
/// including every committed regression input — must pass every
/// equivalence (fast path, threads, recovery, partitioned, classifier,
/// safety verification).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "fuzz/corpus.hpp"
#include "fuzz/diff_oracle.hpp"

namespace sdx::fuzz {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/sdx_oracle_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Trace small_trace() {
  Trace t;
  t.participants = 3;
  t.prefixes = 4;
  // The last op is an announce that steals best-path for prefix 0 (shorter
  // AS path from a different participant), so dropping it on the fast side
  // observably changes forwarding.
  t.ops = {
      TraceOp{TraceOp::Kind::kAnnounce, 2, 1, 2},
      TraceOp{TraceOp::Kind::kWithdraw, 0, 3, 0},
      TraceOp{TraceOp::Kind::kAnnounce, 1, 0, 0},
  };
  return t;
}

TEST(DiffOracle, CleanTracePassesAllEquivalences) {
  DifferentialOracle oracle;
  const auto verdict = oracle.check(small_trace());
  EXPECT_TRUE(verdict.ok) << verdict.oracle << ": " << verdict.detail;
}

TEST(DiffOracle, SeedCorpusPassesAllEquivalences) {
  DifferentialOracle oracle;
  for (const auto& bytes : seed_corpus("diff_oracle")) {
    const auto trace = decode_trace(bytes);
    const auto verdict = oracle.check(trace);
    EXPECT_TRUE(verdict.ok) << trace.to_string() << "\n"
                            << verdict.oracle << ": " << verdict.detail;
  }
}

TEST(DiffOracle, DetectsFastPathSkippingADirtyPrefix) {
  OracleOptions options;
  options.fault = OracleOptions::Fault::kSkipLastFastAnnounce;
  DifferentialOracle oracle(options);

  const auto verdict = oracle.check(small_trace());
  ASSERT_FALSE(verdict.ok) << "planted fast-path divergence went undetected";
  EXPECT_EQ(verdict.oracle, "fast-path");
  EXPECT_FALSE(verdict.detail.empty());

  const auto minimized = oracle.minimize(small_trace());
  EXPECT_LE(minimized.ops.size(), 3u);
  EXPECT_FALSE(oracle.check(minimized).ok)
      << "minimized trace must still fail";
}

TEST(DiffOracle, DetectsCorruptedCheckpointOnRecovery) {
  OracleOptions options;
  options.fault = OracleOptions::Fault::kCorruptCheckpointRoute;
  DifferentialOracle oracle(options);

  // A zero-op trace: recovery diverges on the base RIB alone, so no tail
  // op can re-announce (and thereby mask) the corrupted route.
  Trace t;
  t.participants = 3;
  t.prefixes = 4;
  const auto verdict = oracle.check(t);
  ASSERT_FALSE(verdict.ok) << "planted checkpoint corruption went undetected";
  EXPECT_EQ(verdict.oracle, "recovery");

  const auto minimized = oracle.minimize(t);
  EXPECT_LE(minimized.ops.size(), 3u);
  EXPECT_TRUE(minimized.ops.empty())
      << "a zero-op failure must minimize to zero ops";
}

TEST(DiffOracle, DetectsNondeterministicParallelCompile) {
  OracleOptions options;
  options.fault = OracleOptions::Fault::kPerturbThreadedCompile;
  DifferentialOracle oracle(options);

  const auto verdict = oracle.check(small_trace());
  ASSERT_FALSE(verdict.ok) << "planted compile perturbation went undetected";
  EXPECT_EQ(verdict.oracle, "threads");

  const auto minimized = oracle.minimize(small_trace());
  EXPECT_LE(minimized.ops.size(), 3u);
  EXPECT_FALSE(oracle.check(minimized).ok);
}

TEST(DiffOracle, DetectsPartitionedCompileDivergence) {
  OracleOptions options;
  options.fault = OracleOptions::Fault::kPerturbPartitionedCompile;
  DifferentialOracle oracle(options);

  // Zero ops suffice: the planted withdrawal of prefix 0 on the partitioned
  // side diverges on the base exchange alone.
  Trace t;
  t.participants = 3;
  t.prefixes = 4;
  const auto verdict = oracle.check(t);
  ASSERT_FALSE(verdict.ok) << "planted partition divergence went undetected";
  EXPECT_EQ(verdict.oracle, "partitioned");
  EXPECT_FALSE(verdict.detail.empty());

  const auto minimized = oracle.minimize(t);
  EXPECT_TRUE(minimized.ops.empty())
      << "a zero-op failure must minimize to zero ops";
}

TEST(DiffOracle, DetectsDesyncedClassifierIndex) {
  OracleOptions options;
  options.fault = OracleOptions::Fault::kDesyncClassifiedLookup;
  DifferentialOracle oracle(options);

  // Zero ops suffice: wiping the classifier index makes every classified
  // probe miss while the linear reference still matches the base rules.
  Trace t;
  t.participants = 3;
  t.prefixes = 4;
  const auto verdict = oracle.check(t);
  ASSERT_FALSE(verdict.ok) << "planted classifier desync went undetected";
  EXPECT_EQ(verdict.oracle, "classifier");
  EXPECT_FALSE(verdict.detail.empty());

  const auto minimized = oracle.minimize(t);
  EXPECT_TRUE(minimized.ops.empty())
      << "a zero-op failure must minimize to zero ops";
}

TEST(DiffOracle, DetectsDesyncedBatchLookup) {
  OracleOptions options;
  options.fault = OracleOptions::Fault::kDesyncBatchLookup;
  DifferentialOracle oracle(options);

  // Zero ops suffice: the planted desync makes every batched probe miss
  // while the per-packet path still matches the base rules.
  Trace t;
  t.participants = 3;
  t.prefixes = 4;
  const auto verdict = oracle.check(t);
  ASSERT_FALSE(verdict.ok) << "planted batch desync went undetected";
  EXPECT_EQ(verdict.oracle, "batch");
  EXPECT_FALSE(verdict.detail.empty());

  const auto minimized = oracle.minimize(t);
  EXPECT_TRUE(minimized.ops.empty())
      << "a zero-op failure must minimize to zero ops";
}

TEST(DiffOracle, CleanSteerTracePassesAllEquivalences) {
  // Cross-participant steering churn: steer toward an advertiser (deploys),
  // steer toward a non-advertiser (BGP-filtered out), make the target a
  // transit advertiser mid-trace, then withdraw it again. Every execution
  // path — fast, threaded, partitioned, classified, recovered, verified —
  // must agree on the result.
  Trace t;
  t.participants = 3;
  t.prefixes = 4;
  t.ops = {
      TraceOp{TraceOp::Kind::kSteer, 0, 1, 1},     // P1 steers x1 -> P2 (owner)
      TraceOp{TraceOp::Kind::kAnnounce, 2, 1, 1},  // P3 transit-announces x1
      TraceOp{TraceOp::Kind::kSteer, 1, 1, 2},     // P2 steers x1 -> P3
      TraceOp{TraceOp::Kind::kWithdraw, 2, 1, 0},  // P3 drops x1 again
  };
  DifferentialOracle oracle;
  const auto verdict = oracle.check(t);
  EXPECT_TRUE(verdict.ok) << verdict.oracle << ": " << verdict.detail;
}

TEST(DiffOracle, SteerOpsRoundTripThroughCodec) {
  Trace t;
  t.participants = 4;
  t.prefixes = 5;
  t.ops = {
      TraceOp{TraceOp::Kind::kSteer, 1, 2, 3},
      TraceOp{TraceOp::Kind::kAnnounce, 0, 0, 1},
      TraceOp{TraceOp::Kind::kSteer, 3, 4, 0},
      TraceOp{TraceOp::Kind::kSessionDown, 2, 0, 0},
  };
  EXPECT_EQ(decode_trace(encode_trace(t)), t);
  EXPECT_NE(t.to_string().find("S(p2,x2->p4)"), std::string::npos)
      << t.to_string();
}

TEST(DiffOracle, DetectsPlantedVerifierLoop) {
  OracleOptions options;
  options.fault = OracleOptions::Fault::kPlantVerifierLoop;
  DifferentialOracle oracle(options);

  // Zero ops suffice: the plant (mutual steering left deployed while the
  // steered prefix is withdrawn behind the runtime's back) is independent
  // of the trace body.
  Trace t;
  t.participants = 3;
  t.prefixes = 4;
  const auto verdict = oracle.check(t);
  ASSERT_FALSE(verdict.ok) << "planted forwarding loop went undetected";
  EXPECT_EQ(verdict.oracle, "verify");
  EXPECT_FALSE(verdict.detail.empty());

  const auto minimized = oracle.minimize(t);
  EXPECT_TRUE(minimized.ops.empty())
      << "a zero-op failure must minimize to zero ops";
}

TEST(DiffOracle, MinimizeReturnsPassingTraceUnchanged) {
  DifferentialOracle oracle;
  const auto t = small_trace();
  EXPECT_EQ(oracle.minimize(t), t);
}

TEST(DiffOracle, RegressionFilesRoundTrip) {
  TempDir dir;
  const auto t = small_trace();
  const auto path = DifferentialOracle::write_regression(dir.path(), t);
  EXPECT_EQ(fs::path(path).parent_path(), fs::path(dir.path()));
  EXPECT_EQ(fs::path(path).extension(), ".bin");
  EXPECT_EQ(DifferentialOracle::load_regression(path), t);

  // Re-writing the same trace is idempotent: the name embeds the content
  // checksum, so one failure cannot pile up duplicate files.
  EXPECT_EQ(DifferentialOracle::write_regression(dir.path(), t), path);
}

TEST(DiffOracle, CommittedRegressionsStayFixed) {
  const fs::path dir =
      fs::path(SDX_SOURCE_DIR) / "fuzz" / "corpus" / "regressions";
  ASSERT_TRUE(fs::exists(dir));
  DifferentialOracle oracle;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".bin") continue;
    const auto trace =
        DifferentialOracle::load_regression(entry.path().string());
    const auto verdict = oracle.check(trace);
    EXPECT_TRUE(verdict.ok)
        << entry.path() << " regressed: " << verdict.oracle << ": "
        << verdict.detail;
  }
}

}  // namespace
}  // namespace sdx::fuzz
