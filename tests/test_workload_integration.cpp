/// Workload-scale integration: a generated §6.1 IXP (dozens of
/// participants, hundreds of prefixes, synthesized policies) is compiled,
/// installed into a flow table, and exercised with randomized traffic —
/// with border-router VMAC tagging emulated from the advertisement plan —
/// against the forwarding oracle. Also: remote participants mixed into the
/// randomized oracle check.

#include <gtest/gtest.h>

#include "dataplane/flow_table.hpp"
#include "ixp/ixp_generator.hpp"
#include "netbase/rng.hpp"
#include "sdx/multi_switch.hpp"
#include "sdx/oracle.hpp"
#include "sdx/runtime.hpp"
#include "sdx/verifier.hpp"

namespace sdx::core {
namespace {

using net::Ipv4Address;
using net::Ipv4Prefix;
using net::PacketBuilder;
using net::PacketHeader;
using net::SplitMix64;

/// Emulates an unmodified border router against the compiled state: LPM
/// over the routes the server advertises to the sender, next-hop → MAC via
/// the advertisement plan (VNH binding for grouped prefixes, the real
/// next-hop router MAC otherwise).
std::optional<PacketHeader> tag_frame(const ixp::GeneratedIxp& ixp,
                                      const CompiledSdx& compiled,
                                      bgp::ParticipantId sender,
                                      PacketHeader payload) {
  auto route = ixp.server.best_route_lpm(sender, payload.dst_ip());
  if (!route) return std::nullopt;
  net::MacAddress dst_mac;
  if (auto binding = compiled.binding_for(route->prefix)) {
    dst_mac = binding->vmac;
  } else {
    const net::MacAddress* found = nullptr;
    for (const auto& p : ixp.participants) {
      for (const auto& port : p.ports) {
        if (port.router_ip == route->attrs.next_hop) {
          found = &port.router_mac;
        }
      }
    }
    if (found == nullptr) return std::nullopt;  // unresolvable next hop
    dst_mac = *found;
  }
  const auto& sender_port =
      ixp.participants[ixp.slot_of(sender)].primary_port();
  payload.set_port(sender_port.id);
  payload.set_src_mac(sender_port.router_mac);
  payload.set_dst_mac(dst_mac);
  payload.set(net::Field::kEthType, net::kEthTypeIpv4);
  return payload;
}

class WorkloadIntegration : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkloadIntegration, GeneratedFabricMatchesOracleUnderTraffic) {
  ixp::GeneratorConfig cfg;
  cfg.participants = 40;
  cfg.prefixes = 800;
  cfg.seed = GetParam();
  auto ixp = ixp::generate_ixp(cfg);
  ixp::PolicySynthConfig pcfg;
  pcfg.seed = GetParam() * 3;
  pcfg.policy_prefixes = ixp::sample_policy_prefixes(ixp, 600, GetParam());
  ixp::synthesize_policies(ixp, pcfg);

  SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server);
  VnhAllocator vnh;
  auto compiled = compiler.compile(vnh);
  ASSERT_GT(compiled.stats.prefix_groups, 0u);

  // The compiled table must pass the audit before we even push traffic.
  auto report = audit(compiled, ixp.participants, ixp.ports, ixp.server);
  ASSERT_TRUE(report.ok()) << report.to_string();

  dp::FlowTable table;
  table.install_classifier(compiled.fabric, 1000, 1);

  SplitMix64 rng(GetParam() * 7919 + 13);
  int delivered = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto& sender =
        ixp.participants[rng.below(ixp.participants.size())];
    auto payload =
        PacketBuilder()
            .src_ip(Ipv4Address(static_cast<std::uint32_t>(rng())))
            .dst_ip(Ipv4Address(
                ixp.prefixes[rng.below(ixp.prefixes.size())]
                    .network()
                    .value() |
                rng.below(256)))
            .proto(rng.chance(0.5) ? net::kProtoTcp : net::kProtoUdp)
            .src_port(1024 + rng.below(64))
            .dst_port(rng.chance(0.4) ? 80
                                      : (rng.chance(0.4) ? 443 : 53))
            .build();
    auto expected = oracle_forward(ixp.participants, ixp.ports, ixp.server,
                                   sender.id, 0, payload);
    auto frame = tag_frame(ixp, compiled, sender.id, payload);
    std::vector<PacketHeader> got;
    if (frame) {
      got = table.process(*frame);
      // Mirror the switch's hairpin suppression.
      std::erase_if(got, [&frame](const PacketHeader& h) {
        return h.port() == frame->port();
      });
    }
    ASSERT_EQ(got.size(), expected.size())
        << "sender " << sender.name << " " << payload.to_string();
    if (!expected.empty()) {
      EXPECT_EQ(got[0].port(), expected[0].egress) << payload.to_string();
      EXPECT_EQ(got[0], expected[0].frame) << payload.to_string();
      ++delivered;
    }
  }
  EXPECT_GT(delivered, 150) << "workload produced too little live traffic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadIntegration,
                         ::testing::Values(5, 17, 23));

TEST(WorkloadMultiSwitch, GeneratedWorkloadSurvivesTopologySplit) {
  // The 40-participant workload deployed across two switches must forward
  // identically to the single-table deployment.
  ixp::GeneratorConfig cfg;
  cfg.participants = 40;
  cfg.prefixes = 600;
  cfg.seed = 12;
  auto ixp = ixp::generate_ixp(cfg);
  ixp::PolicySynthConfig pcfg;
  pcfg.seed = 12;
  pcfg.policy_prefixes = ixp::sample_policy_prefixes(ixp, 400, 12);
  ixp::synthesize_policies(ixp, pcfg);
  SdxCompiler compiler(ixp.participants, ixp.ports, ixp.server);
  VnhAllocator vnh;
  auto compiled = compiler.compile(vnh);

  FabricTopology topo(2);
  for (std::size_t i = 0; i < ixp.participants.size(); ++i) {
    for (auto port : ixp.participants[i].port_ids()) {
      topo.place_port(port, static_cast<SwitchId>(i % 2));
    }
  }
  topo.add_link(0, 100001, 1, 100002);
  auto programs = compile_multi_switch(compiled, ixp.participants, topo);
  ASSERT_TRUE(
      audit_multi_switch(programs, topo, ixp.participants).ok());
  MultiSwitchFabric multi(topo, programs);

  dp::FlowTable single;
  single.install_classifier(compiled.fabric, 1000, 1);

  SplitMix64 rng(99);
  int compared = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto& sender =
        ixp.participants[rng.below(ixp.participants.size())];
    auto payload =
        PacketBuilder()
            .src_ip(Ipv4Address(static_cast<std::uint32_t>(rng())))
            .dst_ip(Ipv4Address(
                ixp.prefixes[rng.below(ixp.prefixes.size())]
                    .network()
                    .value() |
                1))
            .proto(net::kProtoTcp)
            .dst_port(rng.chance(0.5) ? 80 : 443)
            .build();
    auto frame = tag_frame(ixp, compiled, sender.id, payload);
    if (!frame) continue;
    auto single_out = single.process(*frame);
    std::erase_if(single_out, [&frame](const PacketHeader& h) {
      return h.port() == frame->port();
    });
    auto multi_out = multi.inject(*frame);
    ASSERT_EQ(single_out, multi_out) << payload.to_string();
    compared += !single_out.empty();
  }
  EXPECT_GT(compared, 100);
}

// ---------------------------------------------------------------------------
// Remote participants in the randomized oracle equivalence check.

class RemoteVsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RemoteVsOracle, RewriteCausesMatchOracleEverywhere) {
  SplitMix64 rng(GetParam() * 37);
  SdxRuntime rt;
  std::vector<bgp::ParticipantId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(rt.add_participant("P" + std::to_string(i),
                                     65001 + static_cast<net::Asn>(i)));
  }
  auto tenant = rt.add_remote_participant("tenant", 65100);

  // Announced blocks, one per participant.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    rt.announce(ids[i],
                Ipv4Prefix(Ipv4Address((100u << 24) |
                                       (static_cast<std::uint32_t>(i + 1)
                                        << 16)),
                           16));
  }
  // The tenant rewrites anycast addresses inside participant 0's block to
  // hosts inside other participants' blocks, keyed on source halves.
  const auto anycast = Ipv4Address::parse("100.1.1.1");
  rt.set_inbound(
      tenant,
      {InboundClause{ClauseMatch{}
                         .dst(Ipv4Prefix::host(anycast))
                         .src(Ipv4Prefix::parse("0.0.0.0/1")),
                     {{net::Field::kDstIp,
                       Ipv4Address::parse("100.2.0.77").value()}},
                     std::nullopt},
       InboundClause{ClauseMatch{}
                         .dst(Ipv4Prefix::host(anycast))
                         .src(Ipv4Prefix::parse("128.0.0.0/1")),
                     {{net::Field::kDstIp,
                       Ipv4Address::parse("100.3.0.88").value()}},
                     std::nullopt}});
  // Some senders also run outbound policies, to force interleaving.
  rt.set_outbound(ids[1],
                  {OutboundClause{ClauseMatch{}.dst_port(80), ids[2]}});
  rt.install();

  for (int trial = 0; trial < 250; ++trial) {
    const auto sender = ids[rng.below(ids.size())];
    auto payload =
        PacketBuilder()
            .src_ip(Ipv4Address(static_cast<std::uint32_t>(rng())))
            .dst_ip(rng.chance(0.4)
                        ? anycast
                        : Ipv4Address((100u << 24) |
                                      (static_cast<std::uint32_t>(
                                           1 + rng.below(4))
                                       << 16) |
                                      1))
            .proto(net::kProtoTcp)
            .dst_port(rng.chance(0.5) ? 80 : 53)
            .build();
    auto expected = oracle_forward(rt.participants(), rt.ports(),
                                   rt.route_server(), sender, 0, payload);
    auto got = rt.send(sender, payload);
    ASSERT_EQ(got.size(), expected.size())
        << "sender " << sender << " " << payload.to_string();
    if (!expected.empty()) {
      EXPECT_EQ(got[0].port, expected[0].egress) << payload.to_string();
      EXPECT_EQ(got[0].frame, expected[0].frame) << payload.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RemoteVsOracle,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sdx::core
