/// \file test_ingest_framing.cpp
/// Satellite coverage for the ingest subsystem's zero-copy framing: the
/// RingBuffer contract, and the WireFramer held byte-identical to a
/// whole-buffer parse under every way a TCP stream can tear — every
/// 2-chunk split of a multi-message stream, all-1-byte feeds, and a
/// deliberately small ring that forces frames to straddle the wrap point.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "bgp/wire.hpp"
#include "ingest/framer.hpp"
#include "ingest/ring_buffer.hpp"

namespace sdx::ingest {
namespace {

using Bytes = std::vector<std::uint8_t>;

// --- RingBuffer units -------------------------------------------------------

TEST(RingBuffer, RoundsCapacityToPowerOfTwo) {
  EXPECT_EQ(RingBuffer(100).capacity(), 128u);
  EXPECT_EQ(RingBuffer(128).capacity(), 128u);
  EXPECT_EQ(RingBuffer(1).capacity(), 16u);
}

TEST(RingBuffer, WriteReadConsumeAcrossWrap) {
  RingBuffer ring(16);
  // Fill, consume a prefix, refill past the physical end.
  auto w = ring.write_span();
  ASSERT_EQ(w.size(), 16u);
  std::iota(w.begin(), w.end(), std::uint8_t{0});
  ring.commit(16);
  EXPECT_EQ(ring.free(), 0u);
  EXPECT_TRUE(ring.write_span().empty());

  ring.consume(10);
  EXPECT_EQ(ring.size(), 6u);
  // The free region is contiguous only up to the physical end.
  w = ring.write_span();
  ASSERT_EQ(w.size(), 10u);
  for (std::size_t i = 0; i < 4; ++i) w[i] = static_cast<std::uint8_t>(16 + i);
  ring.commit(4);

  // Readable region is the tail of the original write, contiguous.
  auto r = ring.read_span();
  ASSERT_EQ(r.size(), 6u);
  EXPECT_EQ(r[0], 10);
  // at() and copy_out() see across the wrap.
  EXPECT_EQ(ring.at(6), 16);
  Bytes out(10);
  ring.copy_out(0, out);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i], static_cast<std::uint8_t>(10 + i));
  }
}

TEST(RingBuffer, CommitAndConsumeBoundsAreEnforced) {
  RingBuffer ring(16);
  EXPECT_THROW(ring.commit(17), std::logic_error);
  EXPECT_THROW(ring.consume(1), std::logic_error);
}

// --- Framer vs whole-buffer parse -------------------------------------------

bgp::UpdateMessage update_no(unsigned i) {
  bgp::UpdateMessage u;
  bgp::RouteAttributes attrs;
  attrs.as_path = net::AsPath{65001, 100 + i};
  attrs.next_hop = net::Ipv4Address::parse("10.0.0.1");
  attrs.communities = {bgp::make_community(65001, i)};
  u.attrs = attrs;
  u.nlri = {net::Ipv4Prefix(net::Ipv4Address::parse("10.1.0.0"), 24 - (i % 4))};
  return u;
}

/// A multi-message stream: OPEN, KEEPALIVE, then a few UPDATEs.
Bytes sample_stream(std::size_t updates) {
  Bytes stream;
  const auto append = [&](const bgp::Message& m) {
    const auto b = bgp::encode(m);
    stream.insert(stream.end(), b.begin(), b.end());
  };
  bgp::OpenMessage open;
  open.my_as = 65001;
  open.bgp_id = net::Ipv4Address::parse("10.0.0.1");
  append(open);
  append(bgp::KeepaliveMessage{});
  for (std::size_t i = 0; i < updates; ++i) append(update_no(i));
  return stream;
}

/// Reference: parse the whole stream in one pass with bgp::decode.
std::vector<bgp::Message> parse_whole(const Bytes& stream) {
  std::vector<bgp::Message> out;
  std::size_t off = 0;
  while (stream.size() - off >= kBgpHeaderSize) {
    const auto r = bgp::decode(
        std::span(stream).subspan(off));
    if (!r.ok()) break;
    out.push_back(*r.message);
    off += r.bytes_consumed;
  }
  return out;
}

/// Feeds \p stream into a framer in the given chunk sizes; returns the
/// decoded messages plus whether a framing error fired.
struct FeedResult {
  std::vector<bgp::Message> messages;
  bool error = false;
  std::uint64_t wrap_copies = 0;
};

FeedResult feed_chunked(const Bytes& stream,
                        const std::vector<std::size_t>& chunks,
                        std::size_t ring_capacity = 1 << 14) {
  RingBuffer ring(ring_capacity);
  WireFramer framer(ring);
  FeedResult result;
  std::span<const std::uint8_t> frame;
  std::string error;
  std::size_t off = 0;
  auto drain = [&] {
    for (;;) {
      const auto status = framer.next(frame, error);
      if (status == WireFramer::Status::kNeedMore) return true;
      if (status == WireFramer::Status::kError) {
        result.error = true;
        return false;
      }
      auto decoded = bgp::decode(frame);
      EXPECT_TRUE(decoded.ok()) << decoded.error;
      if (decoded.ok()) result.messages.push_back(*decoded.message);
    }
  };
  for (std::size_t chunk : chunks) {
    std::size_t left = std::min(chunk, stream.size() - off);
    while (left > 0) {
      auto w = ring.write_span();
      if (w.empty()) {
        ADD_FAILURE() << "ring filled";
        result.error = true;
        return result;
      }
      const std::size_t n = std::min(left, w.size());
      for (std::size_t i = 0; i < n; ++i) w[i] = stream[off + i];
      ring.commit(n);
      off += n;
      left -= n;
      if (!drain()) {
        result.wrap_copies = framer.wrap_copies();
        return result;
      }
    }
    if (off >= stream.size()) break;
  }
  drain();
  result.wrap_copies = framer.wrap_copies();
  return result;
}

void expect_equal(const std::vector<bgp::Message>& got,
                  const std::vector<bgp::Message>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

TEST(WireFramer, EverySplitOfAMultiMessageStream) {
  const auto stream = sample_stream(4);
  const auto want = parse_whole(stream);
  ASSERT_EQ(want.size(), 6u);
  // Split the stream at every boundary into two chunks.
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    auto result = feed_chunked(stream, {cut, stream.size() - cut});
    EXPECT_FALSE(result.error) << "cut=" << cut;
    expect_equal(result.messages, want);
  }
}

TEST(WireFramer, OneByteReadsDecodeIdentically) {
  const auto stream = sample_stream(3);
  const auto want = parse_whole(stream);
  const std::vector<std::size_t> ones(stream.size(), 1);
  auto result = feed_chunked(stream, ones);
  EXPECT_FALSE(result.error);
  expect_equal(result.messages, want);
}

TEST(WireFramer, FramesStraddlingTheWrapAreCopiedOnce) {
  // A ring barely larger than one frame forces wrap-straddling frames as
  // the read head cycles; the framer must still yield identical bytes.
  const auto stream = sample_stream(32);
  ASSERT_GT(stream.size(), 1024u);
  const auto want = parse_whole(stream);
  const std::vector<std::size_t> chunks(stream.size() / 7 + 1, 7);
  auto result = feed_chunked(stream, chunks, /*ring_capacity=*/256);
  EXPECT_FALSE(result.error);
  expect_equal(result.messages, want);
  EXPECT_GT(result.wrap_copies, 0u) << "expected at least one wrap copy";
}

TEST(WireFramer, ZeroCopyWhenFramesFitContiguously) {
  // A large ring fed whole frames never wraps mid-frame: no copies.
  const auto stream = sample_stream(4);
  auto result = feed_chunked(stream, {stream.size()}, /*ring_capacity=*/1 << 16);
  EXPECT_FALSE(result.error);
  EXPECT_EQ(result.wrap_copies, 0u);
}

TEST(WireFramer, LengthBelowMinimumIsAnError) {
  Bytes bad(kBgpHeaderSize, 0xff);
  bad[kBgpLengthOffset] = 0;
  bad[kBgpLengthOffset + 1] = 7;  // < 19
  auto result = feed_chunked(bad, {bad.size()});
  EXPECT_TRUE(result.error);
  EXPECT_TRUE(result.messages.empty());
}

TEST(WireFramer, LengthAboveMaximumIsAnError) {
  Bytes bad(kBgpHeaderSize, 0xff);
  bad[kBgpLengthOffset] = 0x20;  // 8192 > 4096
  bad[kBgpLengthOffset + 1] = 0;
  auto result = feed_chunked(bad, {bad.size()});
  EXPECT_TRUE(result.error);
}

TEST(WireFramer, ErrorSurfacesEvenWhenLengthArrivesByteByByte) {
  Bytes bad(kBgpHeaderSize, 0xff);
  bad[kBgpLengthOffset] = 0;
  bad[kBgpLengthOffset + 1] = 7;
  const std::vector<std::size_t> ones(bad.size(), 1);
  auto result = feed_chunked(bad, ones);
  EXPECT_TRUE(result.error);
}

TEST(WireFramer, TornTrailingFrameStaysPending) {
  auto stream = sample_stream(2);
  const auto want = parse_whole(stream);
  // Chop the last frame in half: everything before it must still decode.
  const auto keep = stream.size() - 10;
  Bytes torn(stream.begin(), stream.begin() + static_cast<long>(keep));
  auto result = feed_chunked(torn, {torn.size()});
  EXPECT_FALSE(result.error);
  ASSERT_EQ(result.messages.size(), want.size() - 1);
}

TEST(WireFramer, PendingFrameLengthIsCachedOncePrefixVisible) {
  const auto stream = sample_stream(1);
  RingBuffer ring(1 << 12);
  WireFramer framer(ring);
  std::span<const std::uint8_t> frame;
  std::string error;
  // Feed exactly the 18 bytes needed to see the length field.
  auto w = ring.write_span();
  for (std::size_t i = 0; i < kBgpLengthOffset + 2; ++i) w[i] = stream[i];
  ring.commit(kBgpLengthOffset + 2);
  EXPECT_EQ(framer.next(frame, error), WireFramer::Status::kNeedMore);
  const std::size_t want_len = (std::size_t{stream[kBgpLengthOffset]} << 8) |
                               stream[kBgpLengthOffset + 1];
  EXPECT_EQ(framer.pending_frame_length(), want_len);
}

}  // namespace
}  // namespace sdx::ingest
