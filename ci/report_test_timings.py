#!/usr/bin/env python3
"""Publish the slowest tests from a ctest JUnit report.

Usage:
    ctest --test-dir build --output-junit test-results.xml ...
    report_test_timings.py build/test-results.xml [--top 10]

Reads the JUnit XML that `ctest --output-junit` writes and reports the
N slowest test cases with their share of total runtime. When
GITHUB_STEP_SUMMARY is set (a GitHub Actions step), the table is appended
to the job's step summary as markdown; otherwise it prints plain text, so
the script is equally useful after a local `--timings`-style run.

Exit status: 0 on success (slow tests are informational, never a gate),
2 when the report is missing or unparsable.
"""

import argparse
import os
import sys
import xml.etree.ElementTree as ET


def load_cases(path):
    """Returns [(name, status, seconds)] for every testcase in the report."""
    try:
        root = ET.parse(path).getroot()
    except (OSError, ET.ParseError) as exc:
        sys.exit(f"error: cannot parse {path}: {exc}")
    cases = []
    for case in root.iter("testcase"):
        name = case.get("name", "?")
        status = case.get("status", "run")
        try:
            seconds = float(case.get("time", "0"))
        except ValueError:
            seconds = 0.0
        cases.append((name, status, seconds))
    return cases


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("report", help="JUnit XML from ctest --output-junit")
    ap.add_argument("--top", type=int, default=10,
                    help="number of slowest tests to report")
    args = ap.parse_args()

    cases = load_cases(args.report)
    if not cases:
        sys.exit(f"error: no testcases in {args.report}")
    total = sum(s for _, _, s in cases)
    slowest = sorted(cases, key=lambda c: c[2], reverse=True)[:args.top]

    print(f"test timings: {len(cases)} tests, {total:.2f}s total")
    for name, status, seconds in slowest:
        share = 100.0 * seconds / total if total > 0 else 0.0
        print(f"  {seconds:7.2f}s  {share:4.1f}%  {status:>6}  {name}")

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        lines = [f"### {args.top} slowest tests "
                 f"({len(cases)} tests, {total:.2f}s total)",
                 "",
                 "| test | time | share | status |",
                 "|---|---|---|---|"]
        for name, status, seconds in slowest:
            share = 100.0 * seconds / total if total > 0 else 0.0
            lines.append(
                f"| `{name}` | {seconds:.2f}s | {share:.1f}% | {status} |")
        lines.append("")
        with open(summary, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
