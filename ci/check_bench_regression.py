#!/usr/bin/env python3
"""Gate a benchmark metrics snapshot against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.prom CURRENT.prom \
        [--histogram NAME --max-regression 0.25 --min-delta 5e-5] \
        [--require-equal-counters]

Two independent checks:

* Latency regression: for each --histogram, the median is interpolated
  from the cumulative bucket counts of both snapshots and the run fails
  when the current median exceeds the baseline median by more than
  --max-regression (relative) AND --min-delta (absolute floor, so runner
  jitter on a sub-100us metric cannot trip the gate; a real regression —
  e.g. the fast path degrading into full recompiles — moves the median by
  orders of magnitude).

* Workload determinism: with --require-equal-counters, every counter-typed
  series must be byte-for-byte equal between the two snapshots. The
  benches are seeded and the pipelines are deterministic, so a counter
  drift (more compiles, more rules, fewer batched updates) is a behavior
  change even when timing still looks fine.

Output: plain text on stdout always. When GITHUB_STEP_SUMMARY is set (a
GitHub Actions step), a markdown table — baseline vs current per gated
counter with a pass/fail column — is appended to the step summary, and
each failure is also emitted as a `::error` workflow annotation naming
the offending counter so it surfaces on the PR checks tab.

Exit status: 0 pass, 1 fail, 2 usage/parse error.
"""

import argparse
import os
import sys


def parse_prom(path):
    """Returns (series: {name{labels} -> float}, types: {family -> type})."""
    series = {}
    types = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        try:
            key, value = line.rsplit(None, 1)
            series[key] = float(value)
        except ValueError:
            sys.exit(f"error: unparsable metrics line in {path}: {line!r}")
    return series, types


def family_of(key):
    return key.split("{", 1)[0]


def histogram_median(series, name):
    """Interpolated median from cumulative buckets (no extra labels)."""
    buckets = []
    for key, value in series.items():
        if not key.startswith(name + "_bucket{"):
            continue
        labels = key[key.index("{") + 1 : key.rindex("}")]
        le = None
        extra = False
        for part in labels.split(","):
            k, _, v = part.partition("=")
            if k == "le":
                le = v.strip('"')
            elif part:
                extra = True
        if extra or le is None:
            continue  # per-stage variants are not the update-latency series
        buckets.append((float("inf") if le == "+Inf" else float(le), value))
    if not buckets:
        return None
    buckets.sort()
    total = buckets[-1][1]
    if total == 0:
        return 0.0
    half = total / 2.0
    prev_le, prev_cum = 0.0, 0.0
    for le, cum in buckets:
        if cum >= half:
            if le == float("inf"):
                return prev_le  # everything above the largest finite bucket
            span = cum - prev_cum
            frac = (half - prev_cum) / span if span > 0 else 0.0
            return prev_le + frac * (le - prev_le)
        prev_le, prev_cum = le, cum
    return prev_le


def write_step_summary(baseline_path, hist_rows, counter_rows, failures):
    """Markdown table per gated series in the job's step summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [f"### Bench regression gate — `{os.path.basename(baseline_path)}`",
             ""]
    if hist_rows:
        lines += ["| histogram median | baseline | current | limit | status |",
                  "|---|---|---|---|---|"]
        for name, base, cur, limit, ok in hist_rows:
            lines.append(
                f"| `{name}` | {base:.3e}s | {cur:.3e}s | {limit:.3e}s "
                f"| {'✅ pass' if ok else '❌ FAIL'} |")
        lines.append("")
    if counter_rows:
        big = len(counter_rows) > 20
        if big:
            lines += [f"<details><summary>{len(counter_rows)} gated counters "
                      f"({sum(not ok for *_, ok in counter_rows)} drifted)"
                      "</summary>", ""]
        lines += ["| counter | baseline | current | status |",
                  "|---|---|---|---|"]
        for key, base, cur, ok in counter_rows:
            fmt = lambda v: "absent" if v is None else f"{v:g}"
            lines.append(f"| `{key}` | {fmt(base)} | {fmt(cur)} "
                         f"| {'✅ pass' if ok else '❌ FAIL'} |")
        if big:
            lines += ["", "</details>"]
        lines.append("")
    lines.append("**FAIL**" if failures else "**OK** — no regression")
    lines.append("")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def annotate_failures(failures):
    """`::error` workflow annotations, one per failure, naming the series."""
    if not os.environ.get("GITHUB_STEP_SUMMARY"):
        return
    for failure in failures:
        print(f"::error title=bench regression::{failure}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--histogram", action="append", default=[],
                    help="histogram family to gate on median latency")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="maximum allowed relative median increase")
    ap.add_argument("--min-delta", type=float, default=5e-5,
                    help="absolute median increase below which regressions "
                         "are considered runner jitter")
    ap.add_argument("--require-equal-counters", action="store_true",
                    help="all counter series must match the baseline exactly")
    args = ap.parse_args()

    base_series, base_types = parse_prom(args.baseline)
    cur_series, cur_types = parse_prom(args.current)

    failures = []
    hist_rows = []
    counter_rows = []

    for name in args.histogram:
        base_median = histogram_median(base_series, name)
        cur_median = histogram_median(cur_series, name)
        if base_median is None:
            failures.append(f"{name}: no buckets in baseline {args.baseline}")
            continue
        if cur_median is None:
            failures.append(f"{name}: no buckets in current {args.current}")
            continue
        delta = cur_median - base_median
        limit = base_median * (1.0 + args.max_regression)
        print(f"{name}: median baseline={base_median:.3e}s "
              f"current={cur_median:.3e}s delta={delta:+.3e}s "
              f"(limit {limit:.3e}s, floor {args.min_delta:.0e}s)")
        regressed = cur_median > limit and delta > args.min_delta
        hist_rows.append((name, base_median, cur_median, limit, not regressed))
        if regressed:
            failures.append(
                f"{name}: median regressed "
                f"{base_median:.3e}s -> {cur_median:.3e}s "
                f"(+{100.0 * delta / base_median:.0f}% > "
                f"{100.0 * args.max_regression:.0f}% allowed)")

    if args.require_equal_counters:
        counter_families = {f for f, t in base_types.items() if t == "counter"}
        counter_families |= {f for f, t in cur_types.items() if t == "counter"}
        checked = 0
        for family in sorted(counter_families):
            base_keys = {k for k in base_series if family_of(k) == family}
            cur_keys = {k for k in cur_series if family_of(k) == family}
            for key in sorted(base_keys | cur_keys):
                checked += 1
                b = base_series.get(key)
                c = cur_series.get(key)
                counter_rows.append((key, b, c, b == c))
                if b != c:
                    failures.append(
                        f"counter drifted: {key} baseline={b} current={c}")
        print(f"counters: {checked} series compared against baseline")

    write_step_summary(args.baseline, hist_rows, counter_rows, failures)
    annotate_failures(failures)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
