#!/usr/bin/env python3
"""Per-file line-coverage gate.

Usage:
    check_coverage.py --gcovr SUMMARY.json  FILE:PCT [FILE:PCT...]
    check_coverage.py --gcov-dir DIR        FILE:PCT [FILE:PCT...]

Each positional argument is a repo-relative source path and its minimum
line-coverage percentage, e.g. `src/bgp/wire.cpp:85`. The run fails when a
tracked file falls below its threshold — or is missing from the coverage
data entirely (a silently-untracked file must not read as covered).

Two input formats:

* --gcovr: the JSON summary gcovr writes with --json-summary (the CI
  coverage job path);
* --gcov-dir: a directory tree of `*.gcov.json.gz` files produced by
  `gcov --json-format` (works with a bare gcc toolchain, no gcovr
  needed); line hit counts are merged across translation units.

Exit status: 0 pass, 1 fail, 2 usage error.
"""

import argparse
import glob
import gzip
import json
import os
import sys


def from_gcovr(path):
    """{normalized filename -> (covered, total)} from a gcovr summary."""
    with open(path, "r", encoding="utf-8") as fh:
        summary = json.load(fh)
    out = {}
    for entry in summary.get("files", []):
        covered = int(entry.get("line_covered", 0))
        total = int(entry.get("line_total", 0))
        out[os.path.normpath(entry["filename"])] = (covered, total)
    return out


def from_gcov_dir(root):
    """Merges every *.gcov.json.gz under root: line -> max hit count."""
    hits = {}  # filename -> {line -> count}
    paths = glob.glob(os.path.join(root, "**", "*.gcov.json.gz"),
                      recursive=True)
    if not paths:
        sys.exit(f"error: no *.gcov.json.gz files under {root}")
    for path in paths:
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError:
                continue  # empty placeholder files for headers
        for entry in data.get("files", []):
            lines = hits.setdefault(os.path.normpath(entry["file"]), {})
            for line in entry.get("lines", []):
                number = line["line_number"]
                lines[number] = max(lines.get(number, 0), line["count"])
    return {
        name: (sum(1 for c in lines.values() if c > 0), len(lines))
        for name, lines in hits.items()
    }


def lookup(coverage, wanted):
    """Suffix-match a repo-relative path against the coverage keys."""
    wanted = os.path.normpath(wanted)
    matches = [k for k in coverage
               if k == wanted or k.endswith(os.sep + wanted)]
    if len(matches) > 1:
        sys.exit(f"error: {wanted} is ambiguous in coverage data: {matches}")
    return coverage[matches[0]] if matches else None


def main():
    ap = argparse.ArgumentParser()
    group = ap.add_mutually_exclusive_group(required=True)
    group.add_argument("--gcovr", help="gcovr --json-summary output")
    group.add_argument("--gcov-dir", help="directory of *.gcov.json.gz files")
    ap.add_argument("targets", nargs="+", metavar="FILE:PCT")
    args = ap.parse_args()

    coverage = (from_gcovr(args.gcovr) if args.gcovr
                else from_gcov_dir(args.gcov_dir))

    failures = []
    for target in args.targets:
        try:
            path, threshold_text = target.rsplit(":", 1)
            threshold = float(threshold_text)
        except ValueError:
            sys.exit(f"error: expected FILE:PCT, got {target!r}")
        found = lookup(coverage, path)
        if found is None:
            failures.append(f"{path}: absent from coverage data")
            continue
        covered, total = found
        pct = 100.0 * covered / total if total else 0.0
        status = "ok" if pct >= threshold else "FAIL"
        print(f"{path}: {pct:.1f}% line coverage "
              f"({covered}/{total} lines, need {threshold:.0f}%) [{status}]")
        if pct < threshold:
            failures.append(
                f"{path}: {pct:.1f}% < required {threshold:.0f}%")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("coverage gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
